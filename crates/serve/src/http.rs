//! A minimal, dependency-free HTTP/1.1 wire layer: request parsing with
//! hard size limits and JSON response writing.
//!
//! This is deliberately a small subset of HTTP — exactly what
//! `mcdla-serve` speaks (see `docs/protocol.md`): `GET`/`POST`,
//! `Content-Length` bodies, keep-alive by default. Everything malformed,
//! truncated, oversized, or unsupported maps to a 4xx/5xx [`WireError`]
//! rather than a panic; the wire tests in `tests/wire.rs` pin that.
//!
//! The primary entry point is [`parse_request`]: an incremental,
//! buffer-oriented parser the epoll event loop calls against each
//! connection's inbox. Requests that are smuggling-shaped — conflicting
//! duplicate `Content-Length` headers, any `Transfer-Encoding` — are
//! rejected outright (400/501) so unread body bytes can never be
//! re-parsed as a pipelined request. Keep-alive follows a strict
//! version table (see [`parse_request`]); anything that is not a known
//! `HTTP/1.x` version is served conservatively or refused.

use std::io::{BufRead, Write};

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Decoded body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
    /// All request headers, names lower-cased, values trimmed, in
    /// arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A wire-level failure, carrying the HTTP status the server should
/// answer with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Response status code (4xx/5xx; 408 for idle-timeout reads).
    pub status: u16,
    /// Human-readable cause, sent back as `{"error": ...}`.
    pub message: String,
}

impl WireError {
    /// A wire error with the status the connection should answer
    /// before closing.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        WireError {
            status,
            message: message.into(),
        }
    }
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full head + body is
/// present — the caller drains `consumed` bytes and may call again for
/// the next pipelined request. `Ok(None)` means the buffer holds only a
/// request prefix so far: keep reading. `Err` names the 4xx/5xx to
/// answer with before closing the connection (a parse error leaves the
/// stream position undefined, so errors always close).
///
/// Keep-alive follows a per-version table:
///
/// | version            | default     | honored opt-outs/ins          |
/// |--------------------|-------------|-------------------------------|
/// | `HTTP/1.1`         | keep-alive  | `Connection: close`           |
/// | `HTTP/1.0`         | close       | `Connection: keep-alive`      |
/// | other `HTTP/1.x`   | close       | none (served, then closed)    |
/// | anything else      | —           | rejected with 400             |
///
/// Smuggling-shaped requests are rejected: conflicting duplicate
/// `Content-Length` headers and non-numeric lengths are 400, any
/// `Transfer-Encoding` (chunked included) is 501.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, WireError> {
    match parse_inner(buf)? {
        Parsed::Complete(request, consumed) => Ok(Some((request, consumed))),
        Parsed::NeedMore(_) => Ok(None),
    }
}

/// Incremental parse status: either a complete request or "read more",
/// with the total request size attached once the head has arrived.
enum Parsed {
    Complete(Request, usize),
    NeedMore(Option<usize>),
}

fn parse_inner(buf: &[u8]) -> Result<Parsed, WireError> {
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES)];
    let Some(head_len) = find_head_end(window) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(WireError::new(
                431,
                format!("request head exceeds the {MAX_HEAD_BYTES}-byte limit"),
            ));
        }
        return Ok(Parsed::NeedMore(None)); // incomplete head: keep reading
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| WireError::new(400, "request head is not valid utf-8"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(WireError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    };
    if method.is_empty() || path.is_empty() {
        return Err(WireError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    }
    // The keep-alive version table. Unknown HTTP/1.x minors are served
    // conservatively: one response, then close — their keep-alive
    // semantics are not ours to guess.
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if is_http_1x(v) => false,
        _ => {
            return Err(WireError::new(
                400,
                format!("unsupported protocol version `{version}`"),
            ));
        }
    };
    let may_keep_alive = matches!(version, "HTTP/1.0" | "HTTP/1.1");

    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::new(400, format!("malformed header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        headers.push((name.clone(), value.to_owned()));
        match name.as_str() {
            "content-length" => {
                // Digits only: `parse::<usize>` alone would accept
                // `+5`, which proxies may read differently — exactly
                // the disagreement request smuggling exploits.
                let parsed = if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) {
                    value.parse::<usize>().ok()
                } else {
                    None
                };
                let Some(parsed) = parsed else {
                    return Err(WireError::new(400, format!("bad content-length `{value}`")));
                };
                // Duplicate Content-Length headers that agree are
                // tolerated; a conflict means the peer and any
                // intermediary may frame the body differently, so 400.
                if let Some(prior) = content_length {
                    if prior != parsed {
                        return Err(WireError::new(
                            400,
                            format!("conflicting content-length headers ({prior} then {parsed})"),
                        ));
                    }
                }
                if parsed > MAX_BODY_BYTES {
                    return Err(WireError::new(
                        413,
                        format!("body of {parsed} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
                    ));
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                return Err(WireError::new(
                    501,
                    "transfer-encoding is unsupported; send a content-length body",
                ));
            }
            "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
            "connection" if value.eq_ignore_ascii_case("keep-alive") && may_keep_alive => {
                keep_alive = true;
            }
            _ => {}
        }
    }

    let content_length = content_length.unwrap_or(0);
    let body_start = head_len + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(Parsed::NeedMore(Some(total))); // body still arriving
    }
    Ok(Parsed::Complete(
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            body: buf[body_start..total].to_vec(),
            keep_alive,
            headers,
        },
        total,
    ))
}

/// The error to answer when the peer stopped sending (EOF or timeout)
/// with an incomplete request in `buf`. `timed_out` selects 408 over
/// the 400 a truncating close earns.
pub fn incomplete_error(buf: &[u8], timed_out: bool) -> WireError {
    let part = if find_head_end(&buf[..buf.len().min(MAX_HEAD_BYTES)]).is_some() {
        "body"
    } else {
        "head"
    };
    if timed_out {
        WireError::new(408, format!("timed out reading the request {part}"))
    } else {
        WireError::new(400, format!("truncated request {part}"))
    }
}

/// Byte offset of the `\r\n\r\n` head terminator (length of the head
/// without the terminator), or `None` when it has not arrived yet.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// True for `HTTP/1.<digits>` versions other than the two we know.
fn is_http_1x(version: &str) -> bool {
    version
        .strip_prefix("HTTP/1.")
        .is_some_and(|minor| !minor.is_empty() && minor.bytes().all(|b| b.is_ascii_digit()))
}

/// Reads one request from a blocking stream (the worker-pool side and
/// the tests use this; the event loop calls [`parse_request`] against
/// its per-connection inbox instead).
///
/// Returns `Ok(None)` on a clean close (EOF before the first byte of a
/// request) — the keep-alive loop's normal exit. Every malformed input
/// is an `Err` naming the 4xx to answer with.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, WireError> {
    // The head is read byte-by-byte (the reader is buffered, so this
    // costs nanoseconds per byte) and the body with one `read_exact`,
    // so exactly one request is consumed — pipelined bytes after it
    // stay in the reader for the next call.
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match parse_inner(&buf)? {
            Parsed::Complete(request, consumed) => {
                debug_assert_eq!(consumed, buf.len(), "read_request reads one request");
                return Ok(Some(request));
            }
            Parsed::NeedMore(Some(total)) => {
                let mut body = vec![0u8; total - buf.len()];
                reader.read_exact(&mut body).map_err(|e| {
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        WireError::new(408, "timed out reading the request body")
                    } else {
                        WireError::new(400, "truncated request body")
                    }
                })?;
                buf.extend_from_slice(&body);
            }
            Parsed::NeedMore(None) => match reader.read(&mut byte) {
                Ok(0) => {
                    return if buf.is_empty() {
                        Ok(None) // clean close between requests
                    } else {
                        Err(incomplete_error(&buf, false))
                    };
                }
                Ok(_) => buf.push(byte[0]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return if buf.is_empty() {
                        Ok(None) // idle keep-alive connection: close quietly
                    } else {
                        Err(incomplete_error(&buf, true))
                    };
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(None), // reset mid-idle: nothing to answer
            },
        }
    }
}

/// The canonical reason phrase for the statuses this service answers.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Splits a request target into its path and optional query string
/// (`/grid?stream=1` → `("/grid", Some("stream=1"))`).
pub fn split_target(target: &str) -> (&str, Option<&str>) {
    match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    }
}

/// True when a query string carries `key=1` or a bare `key` flag.
pub fn query_flag(query: Option<&str>, key: &str) -> bool {
    query.unwrap_or("").split('&').any(|pair| {
        pair == key || pair.strip_prefix(key).and_then(|r| r.strip_prefix('=')) == Some("1")
    })
}

/// The value of `key=...` in a query string (`None` when absent or
/// bare). No percent-decoding — the values this service reads are
/// plain tokens (`sort=slow`, `endpoint=grid`, `limit=50`).
pub fn query_param<'q>(query: Option<&'q str>, key: &str) -> Option<&'q str> {
    query?
        .split('&')
        .find_map(|pair| pair.split_once('=').filter(|(k, _)| *k == key))
        .map(|(_, v)| v)
}

/// Starts a chunked NDJSON response: status line and headers only; the
/// body follows as [`write_chunk`] calls ended by [`finish_chunked`].
pub fn write_chunked_head(
    w: &mut impl Write,
    status: u16,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_head_with(w, status, &[], keep_alive)
}

/// [`write_chunked_head`] with extra response headers (the request-id
/// echo on streamed grids).
pub fn write_chunked_head_with(
    w: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: {connection}\r\n",
        reason(status),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())
}

/// Writes one HTTP/1.1 chunk (`{len:x}\r\n{data}\r\n`). Empty data is
/// skipped — a zero-length chunk would terminate the stream.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response (the `0\r\n\r\n` final chunk). A stream
/// that closes without this marker was truncated mid-flight — that is
/// how clients detect a server-side failure after the 200 head.
pub fn finish_chunked(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Writes one JSON response (the content type almost everything speaks).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_typed(w, status, "application/json", body, keep_alive)
}

/// Writes one response with an explicit content type (`GET /metrics`
/// answers Prometheus text exposition, everything else JSON).
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(w, status, content_type, &[], body, keep_alive)
}

/// [`write_response_typed`] with extra response headers (the
/// `X-Mcdla-Request-Id` echo).
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One buffered write per response keeps cached-cell latency low.
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    w.write_all(&out)?;
    w.flush()
}

/// The `{"error": message}` JSON body every failure answers with.
pub fn error_body(message: &str) -> String {
    serde::json::to_string(&serde::Value::Map(vec![(
        "error".into(),
        serde::Value::Str(message.into()),
    )]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, WireError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn headers_are_retained_case_insensitively() {
        let req = parse(
            b"POST /simulate HTTP/1.1\r\nX-Mcdla-Request-Id: abc123\r\ncontent-length: 0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.header("x-mcdla-request-id"), Some("abc123"));
        assert_eq!(req.header("X-MCDLA-REQUEST-ID"), Some("abc123"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(
            query_param(Some("sort=slow&endpoint=grid"), "sort"),
            Some("slow")
        );
        assert_eq!(
            query_param(Some("sort=slow&endpoint=grid"), "endpoint"),
            Some("grid")
        );
        assert_eq!(query_param(Some("sort"), "sort"), None);
        assert_eq!(query_param(None, "sort"), None);
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("x-mcdla-request-id", "deadbeef")],
            "{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-mcdla-request-id: deadbeef\r\n"));
        let mut out = Vec::new();
        write_chunked_head_with(&mut out, 200, &[("x-mcdla-request-id", "cafe")], true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-mcdla-request-id: cafe\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn keep_alive_version_table() {
        // (version, extra header, expected keep_alive) — the table in
        // the parse_request docs, pinned.
        let cases: &[(&str, &str, bool)] = &[
            ("HTTP/1.1", "", true),
            ("HTTP/1.1", "Connection: close\r\n", false),
            ("HTTP/1.1", "Connection: keep-alive\r\n", true),
            ("HTTP/1.0", "", false),
            ("HTTP/1.0", "Connection: keep-alive\r\n", true),
            ("HTTP/1.0", "Connection: close\r\n", false),
            // Unknown HTTP/1.x minors: served, but never kept alive —
            // not even with an explicit Connection: keep-alive.
            ("HTTP/1.2", "", false),
            ("HTTP/1.2", "Connection: keep-alive\r\n", false),
            ("HTTP/1.9", "", false),
            ("HTTP/1.12", "", false),
        ];
        for &(version, extra, expect) in cases {
            let raw = format!("GET /healthz {version}\r\n{extra}\r\n");
            let req = parse(raw.as_bytes()).unwrap().unwrap();
            assert_eq!(req.keep_alive, expect, "{version} + {extra:?}");
        }
        // Not HTTP/1.x at all: refused outright.
        for version in ["HTTP/2.0", "HTTP/1.", "HTTP/1.x", "ICY/1.1"] {
            let raw = format!("GET /healthz {version}\r\n\r\n");
            assert_eq!(parse(raw.as_bytes()).unwrap_err().status, 400, "{version}");
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let err = parse(b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 2\r\n\r\nbody")
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("conflicting"), "{}", err.message);
        // Duplicates that agree are tolerated.
        let req = parse(b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn content_length_is_digits_only() {
        for bad in ["+4", "-4", " 4 x", "4,4", "0x4", ""] {
            let raw = format!("POST /x HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nbody");
            assert_eq!(parse(raw.as_bytes()).unwrap_err().status, 400, "`{bad}`");
        }
    }

    #[test]
    fn buffer_parse_is_incremental_and_pipelined() {
        let wire = b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\n\r\n";
        // Every strict prefix of the first request parses as None.
        let first_len = b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody".len();
        for cut in 0..first_len {
            assert_eq!(
                parse_request(&wire[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes"
            );
        }
        // The full buffer yields the first request and its exact size.
        let (req, consumed) = parse_request(wire).unwrap().unwrap();
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, b"body");
        assert_eq!(consumed, first_len);
        // The remainder is the second pipelined request.
        let (req2, consumed2) = parse_request(&wire[consumed..]).unwrap().unwrap();
        assert_eq!(req2.path, "/healthz");
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn incomplete_errors_name_head_or_body() {
        let e = incomplete_error(b"GET /x HT", false);
        assert_eq!((e.status, e.message.contains("head")), (400, true));
        let e = incomplete_error(b"POST /x HTTP/1.1\r\ncontent-length: 9\r\n\r\nhi", false);
        assert_eq!((e.status, e.message.contains("body")), (400, true));
        let e = incomplete_error(b"GET /x HT", true);
        assert_eq!(e.status, 408);
    }

    #[test]
    fn truncation_is_a_400() {
        assert_eq!(parse(b"GET /healthz HTT").unwrap_err().status, 400);
        let err =
            parse(b"POST /simulate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn malformed_inputs_name_their_4xx() {
        assert_eq!(parse(b"NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ncontent-length: lots\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let huge = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err().status, 413);
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8));
        assert_eq!(parse(&head).unwrap_err().status, 431);
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_bodies_are_json() {
        assert_eq!(error_body("boom"), "{\"error\":\"boom\"}");
    }

    #[test]
    fn target_splitting_and_flags() {
        assert_eq!(split_target("/grid"), ("/grid", None));
        assert_eq!(split_target("/grid?stream=1"), ("/grid", Some("stream=1")));
        assert_eq!(split_target("/g?a=1&b=2"), ("/g", Some("a=1&b=2")));
        assert!(query_flag(Some("stream=1"), "stream"));
        assert!(query_flag(Some("x=2&stream"), "stream"));
        assert!(!query_flag(Some("stream=0"), "stream"));
        assert!(!query_flag(Some("streamer=1"), "stream"));
        assert!(!query_flag(None, "stream"));
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, true).unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"{\"b\":2}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("content-type: application/x-ndjson\r\n"));
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert_eq!(body, "8\r\n{\"a\":1}\n\r\n8\r\n{\"b\":2}\n\r\n0\r\n\r\n");
    }
}
