//! A tiny blocking HTTP/1.1 client over `std::net::TcpStream` — just
//! enough to drive `mcdla-serve`: the `mcdla query` subcommand, the
//! service bench, and the wire tests all speak through it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the service always answers JSON).
    pub body: String,
}

impl Response {
    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A persistent keep-alive connection. Reusing one connection is what
/// makes cached-cell throughput tens of thousands of requests per
/// second instead of paying a TCP handshake per request.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to `host:port`.
    pub fn open(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cloning stream: {e}"))?,
        );
        Ok(Connection { stream, reader })
    }

    /// Issues one request and reads the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: mcdla-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut out = Vec::with_capacity(head.len() + body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(body.as_bytes());
        self.stream
            .write_all(&out)
            .map_err(|e| format!("sending request: {e}"))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, String> {
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .map_err(|e| format!("reading status line: {e}"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line `{}`", status_line.trim_end()))?;

        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("reading headers: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-headers".into());
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
                }
            }
        }

        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("reading body: {e}"))?;
        Ok(Response {
            status,
            body: String::from_utf8(body).map_err(|_| "body is not valid utf-8".to_owned())?,
        })
    }
}

/// One-shot convenience: open, request, close.
pub fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    Connection::open(addr)?.request(method, path, body)
}
