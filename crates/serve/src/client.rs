//! A tiny blocking HTTP/1.1 client over `std::net::TcpStream` — just
//! enough to drive `mcdla-serve`: the `mcdla query` subcommand, the
//! service bench, and the wire tests all speak through it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One response: status code, body text, and response headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the service always answers JSON).
    pub body: String,
    /// Response headers, names lower-cased, in wire order.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The first header with this name (lower-cased lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Connect/read/write deadlines for a [`Connection`]. A dead or wedged
/// server must never hang a caller forever: every phase of a request has
/// a bound (`None` disables that bound, for callers that really do want
/// to wait out an arbitrarily long simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// TCP connect deadline.
    pub connect: Option<Duration>,
    /// Per-read deadline (response head, body, and each stream chunk).
    pub read: Option<Duration>,
    /// Per-write deadline (request head + body).
    pub write: Option<Duration>,
}

impl Default for Timeouts {
    /// 10 s to connect, 120 s per read (cold cells really simulate),
    /// 30 s per write.
    fn default() -> Self {
        Timeouts {
            connect: Some(Duration::from_secs(10)),
            read: Some(Duration::from_secs(120)),
            write: Some(Duration::from_secs(30)),
        }
    }
}

impl Timeouts {
    /// One deadline for every phase — the CLI's `--timeout-ms N`.
    pub fn all(limit: Duration) -> Self {
        Timeouts {
            connect: Some(limit),
            read: Some(limit),
            write: Some(limit),
        }
    }
}

/// A persistent keep-alive connection. Reusing one connection is what
/// makes cached-cell throughput tens of thousands of requests per
/// second instead of paying a TCP handshake per request.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to `host:port` with [`Timeouts::default`] deadlines.
    pub fn open(addr: &str) -> Result<Self, String> {
        Self::open_with(addr, Timeouts::default())
    }

    /// Connects to `host:port` with explicit deadlines.
    pub fn open_with(addr: &str, timeouts: Timeouts) -> Result<Self, String> {
        let stream = match timeouts.connect {
            Some(limit) => {
                // `connect_timeout` needs resolved addresses; try each in
                // turn so a multi-homed name still connects.
                let resolved: Vec<_> = addr
                    .to_socket_addrs()
                    .map_err(|e| format!("resolving {addr}: {e}"))?
                    .collect();
                let mut last_err = format!("resolving {addr}: no addresses");
                let mut stream = None;
                for candidate in resolved {
                    match TcpStream::connect_timeout(&candidate, limit) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last_err = format!("connecting {addr}: {e}"),
                    }
                }
                stream.ok_or(last_err)?
            }
            None => TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?,
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(timeouts.read);
        let _ = stream.set_write_timeout(timeouts.write);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cloning stream: {e}"))?,
        );
        Ok(Connection { stream, reader })
    }

    /// Issues one request and reads the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        self.request_with(method, path, &[], body)
    }

    /// Issues one request with extra request headers (e.g. the
    /// propagated `X-Mcdla-Request-Id`) and reads the full response.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<Response, String> {
        self.send_request_with(method, path, headers, body)?;
        self.read_response()
    }

    /// Issues a request expecting a **streamed** (chunked NDJSON)
    /// response — `POST /grid?stream=1` — and returns a line reader over
    /// it. Non-chunked answers (a `400` rejection, say) come back as a
    /// single buffered "line" holding the whole body, so callers check
    /// [`StreamingResponse::status`] first. The connection is reusable
    /// for further requests once every line has been read.
    pub fn request_stream(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<StreamingResponse<'_>, String> {
        self.send_request(method, path, body)?;
        self.read_stream()
    }

    /// Sends a request without reading anything back. Pair with
    /// [`Connection::read_stream`]. This split is what lets a
    /// scatter-gather caller start N servers computing concurrently and
    /// only then drain their streams one at a time.
    pub fn start_stream(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(), String> {
        self.send_request(method, path, body)
    }

    /// Reads the response head for a request sent with
    /// [`Connection::start_stream`] and returns the stream reader over
    /// its body.
    pub fn read_stream(&mut self) -> Result<StreamingResponse<'_>, String> {
        let Head {
            status,
            content_length,
            chunked,
            ..
        } = read_response_head(&mut self.reader)?;
        if chunked {
            Ok(StreamingResponse {
                status,
                kind: StreamKind::Chunked {
                    reader: &mut self.reader,
                    carry: Vec::new(),
                    done: false,
                },
            })
        } else {
            let mut body = vec![0u8; content_length];
            self.reader
                .read_exact(&mut body)
                .map_err(|e| format!("reading body: {e}"))?;
            let body = String::from_utf8(body).map_err(|_| "body is not valid utf-8".to_owned())?;
            Ok(StreamingResponse {
                status,
                kind: StreamKind::Buffered(Some(body)),
            })
        }
    }

    /// Issues a whole batch of `(method, path, body)` requests as **one
    /// pipelined write** — every request leaves in a single segment,
    /// then all responses are read back in order. This is what pushes
    /// cached-cell throughput past the per-round-trip ceiling: the
    /// server parses and answers back-to-back requests without waiting
    /// for the client to see each response first.
    pub fn request_pipelined(
        &mut self,
        requests: &[(&str, &str, Option<&str>)],
    ) -> Result<Vec<Response>, String> {
        let mut out = Vec::new();
        for (method, path, body) in requests {
            encode_request(&mut out, method, path, &[], *body);
        }
        self.stream
            .write_all(&out)
            .map_err(|e| format!("sending pipelined requests: {e}"))?;
        requests.iter().map(|_| self.read_response()).collect()
    }

    fn send_request(&mut self, method: &str, path: &str, body: Option<&str>) -> Result<(), String> {
        self.send_request_with(method, path, &[], body)
    }

    fn send_request_with(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<(), String> {
        let mut out = Vec::new();
        encode_request(&mut out, method, path, headers, body);
        self.stream
            .write_all(&out)
            .map_err(|e| format!("sending request: {e}"))
    }

    fn read_response(&mut self) -> Result<Response, String> {
        let Head {
            status,
            content_length,
            chunked,
            headers,
        } = read_response_head(&mut self.reader)?;
        if chunked {
            return Err("unexpected chunked response (use `request_stream`)".into());
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("reading body: {e}"))?;
        Ok(Response {
            status,
            body: String::from_utf8(body).map_err(|_| "body is not valid utf-8".to_owned())?,
            headers,
        })
    }
}

/// Appends one serialized request to `out` (the unit both single
/// writes and pipelined batches are built from).
fn encode_request(
    out: &mut Vec<u8>,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) {
    let body = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: mcdla-serve\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    out.reserve(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
}

/// One parsed response head.
struct Head {
    status: u16,
    content_length: usize,
    chunked: bool,
    headers: Vec<(String, String)>,
}

/// Reads one response head, collecting every header (names lower-cased).
fn read_response_head(reader: &mut BufReader<TcpStream>) -> Result<Head, String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim_end()))?;

    let mut content_length = 0usize;
    let mut chunked = false;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading headers: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| format!("bad content-length `{value}`"))?;
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
            headers.push((name, value.to_owned()));
        }
    }
    Ok(Head {
        status,
        content_length,
        chunked,
        headers,
    })
}

/// A streamed (`?stream=1`) response: the status plus a reader yielding
/// one NDJSON line at a time, reassembled across chunk boundaries.
///
/// A stream whose connection closes before the terminal `0`-length chunk
/// was **truncated** — the server died or cancelled mid-flight — and
/// surfaces as an `Err` line, never as a silent clean end.
///
/// Dropping a partially-read stream drains the remaining chunks first,
/// so the borrowed [`Connection`] stays framed and reusable for the
/// next request (a reader abandoned mid-chunk would otherwise leave
/// chunk bytes where the next response head is expected).
#[derive(Debug)]
pub struct StreamingResponse<'a> {
    /// HTTP status code of the response head.
    pub status: u16,
    kind: StreamKind<'a>,
}

#[derive(Debug)]
enum StreamKind<'a> {
    /// A non-chunked answer (e.g. a 400 rejection): the whole body as
    /// one pending "line".
    Buffered(Option<String>),
    Chunked {
        reader: &'a mut BufReader<TcpStream>,
        carry: Vec<u8>,
        done: bool,
    },
}

impl StreamingResponse<'_> {
    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The next line of the stream: `None` after a clean terminal chunk,
    /// `Some(Err(..))` on truncation or malformed framing.
    #[allow(clippy::should_implement_trait)] // borrows self.reader; not an owned Iterator
    pub fn next_line(&mut self) -> Option<Result<String, String>> {
        match &mut self.kind {
            StreamKind::Buffered(body) => body.take().filter(|b| !b.is_empty()).map(Ok),
            StreamKind::Chunked {
                reader,
                carry,
                done,
            } => loop {
                if let Some(pos) = carry.iter().position(|&b| b == b'\n') {
                    let rest = carry.split_off(pos + 1);
                    let mut line = std::mem::replace(carry, rest);
                    line.pop();
                    return Some(
                        String::from_utf8(line)
                            .map_err(|_| "stream line is not valid utf-8".to_owned()),
                    );
                }
                if *done {
                    if carry.is_empty() {
                        return None;
                    }
                    let line = std::mem::take(carry);
                    return Some(
                        String::from_utf8(line)
                            .map_err(|_| "stream line is not valid utf-8".to_owned()),
                    );
                }
                match read_chunk(reader) {
                    Ok(Some(data)) => carry.extend_from_slice(&data),
                    Ok(None) => *done = true,
                    Err(e) => {
                        *done = true;
                        carry.clear();
                        return Some(Err(e));
                    }
                }
            },
        }
    }

    /// Drains the stream, collecting every remaining line.
    pub fn collect_lines(mut self) -> Result<Vec<String>, String> {
        let mut lines = Vec::new();
        while let Some(line) = self.next_line() {
            lines.push(line?);
        }
        Ok(lines)
    }

    /// Consumes the stream **without** draining the unread tail (unlike
    /// a plain drop). The connection is left mid-response and must be
    /// closed, not reused — closing is exactly what a caller wants when
    /// aborting: the server observes the disconnect and cancels the
    /// remaining cells instead of computing them for a drain.
    pub fn abandon(mut self) {
        if let StreamKind::Chunked { carry, done, .. } = &mut self.kind {
            carry.clear();
            *done = true;
        }
    }
}

impl Drop for StreamingResponse<'_> {
    fn drop(&mut self) {
        if let StreamKind::Chunked { reader, done, .. } = &mut self.kind {
            // Consume the unread tail (terminal chunk included) so the
            // connection's next response starts on a frame boundary. A
            // read error here means the connection is already broken —
            // the next request will surface that on its own.
            while !*done {
                match read_chunk(reader) {
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => *done = true,
                }
            }
        }
    }
}

/// Reads one chunk body; `Ok(None)` is the clean terminal chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> Result<Option<Vec<u8>>, String> {
    let mut size_line = String::new();
    let n = reader
        .read_line(&mut size_line)
        .map_err(|e| format!("reading chunk size: {e}"))?;
    if n == 0 {
        return Err("stream truncated: connection closed before the terminal chunk".into());
    }
    let size_str = size_line.trim_end().split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_str, 16)
        .map_err(|_| format!("bad chunk size `{}`", size_line.trim_end()))?;
    if size == 0 {
        // Trailer section: lines until the blank terminator.
        loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("reading chunk trailer: {e}"))?;
            if n == 0 || line.trim_end().is_empty() {
                break;
            }
        }
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    reader
        .read_exact(&mut data)
        .map_err(|e| format!("stream truncated mid-chunk: {e}"))?;
    let mut crlf = [0u8; 2];
    reader
        .read_exact(&mut crlf)
        .map_err(|e| format!("stream truncated after a chunk: {e}"))?;
    Ok(Some(data))
}

/// One-shot convenience: open, request, close.
pub fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    Connection::open(addr)?.request(method, path, body)
}

/// One-shot convenience with explicit deadlines.
pub fn request_once_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeouts: Timeouts,
) -> Result<Response, String> {
    Connection::open_with(addr, timeouts)?.request(method, path, body)
}
