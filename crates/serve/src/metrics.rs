//! Prometheus text-exposition rendering (format version 0.0.4) for the
//! worker's and the gateway's `GET /metrics` endpoints — counters,
//! gauges, and (since the `mcdla-obs` layer) latency histograms.

use mcdla_obs::HistogramSnapshot;

/// The `content-type` a Prometheus scrape expects.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Accumulates one exposition document: `# HELP`/`# TYPE` headers
/// followed by sample lines, family by family.
#[derive(Debug, Default)]
pub struct MetricsBuilder {
    out: String,
}

impl MetricsBuilder {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a metric family: emits its `# HELP` and `# TYPE` lines.
    /// Follow with [`MetricsBuilder::sample`] calls for the same name.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) -> &mut Self {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// One sample line. `labels` are `(name, value)` pairs; label values
    /// are escaped per the exposition format.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        // Counters and gauges here are integral or seconds; `{}` prints
        // both without exponent noise.
        self.out.push_str(&format!("{value}"));
        self.out.push('\n');
        self
    }

    /// A one-sample family (header + single unlabeled line).
    pub fn scalar(&mut self, name: &str, help: &str, kind: &str, value: f64) -> &mut Self {
        self.family(name, help, kind);
        self.sample(name, &[], value)
    }

    /// Starts a `histogram` family; follow with
    /// [`MetricsBuilder::histogram`] calls for each label set.
    pub fn histogram_family(&mut self, name: &str, help: &str) -> &mut Self {
        self.family(name, help, "histogram")
    }

    /// One histogram series: cumulative `{name}_bucket{le=...}` lines
    /// in ascending `le` order (ending at `le="+Inf"`, whose count
    /// equals `{name}_count`), then `{name}_sum` and `{name}_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) -> &mut Self {
        let bucket = format!("{name}_bucket");
        for (bound, cum) in snap.cumulative() {
            let le = fmt_le(bound);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket, &with_le, cum as f64);
        }
        self.sample(&format!("{name}_sum"), labels, snap.sum_seconds);
        self.sample(&format!("{name}_count"), labels, snap.count() as f64)
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Formats a bucket bound as Prometheus expects: plain decimal for
/// finite bounds, the literal `+Inf` for the overflow bucket.
fn fmt_le(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{bound}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_families_labels_and_escapes() {
        let mut b = MetricsBuilder::new();
        b.family("x_total", "things", "counter");
        b.sample("x_total", &[("endpoint", "simulate")], 3.0);
        b.sample("x_total", &[("endpoint", "a\"b\\c")], 1.5);
        b.scalar("up", "liveness", "gauge", 1.0);
        let text = b.finish();
        assert!(text.contains("# HELP x_total things\n# TYPE x_total counter\n"));
        assert!(text.contains("x_total{endpoint=\"simulate\"} 3\n"));
        assert!(text.contains("x_total{endpoint=\"a\\\"b\\\\c\"} 1.5\n"));
        assert!(text.ends_with("up 1\n"));
    }

    #[test]
    fn histograms_render_cumulative_ordered_buckets() {
        let h = mcdla_obs::Histogram::new();
        h.observe(3e-6);
        h.observe(3e-6);
        h.observe(0.3);
        h.observe(1e9); // +Inf bucket
        let mut b = MetricsBuilder::new();
        b.histogram_family("lat_seconds", "latency");
        b.histogram("lat_seconds", &[("endpoint", "simulate")], &h.snapshot());
        let text = b.finish();
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        // Parse the bucket lines back out and check the contract.
        let buckets: Vec<(f64, f64)> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket{"))
            .map(|l| {
                let le_raw = l.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
                let le = if le_raw == "+Inf" {
                    f64::INFINITY
                } else {
                    le_raw.parse().unwrap()
                };
                let count: f64 = l.rsplit(' ').next().unwrap().parse().unwrap();
                (le, count)
            })
            .collect();
        assert_eq!(buckets.len(), mcdla_obs::BUCKETS);
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds must ascend: {w:?}");
            assert!(w[0].1 <= w[1].1, "buckets must be cumulative: {w:?}");
        }
        let (inf_bound, inf_count) = buckets[buckets.len() - 1];
        assert!(inf_bound.is_infinite());
        assert!(text.contains("lat_seconds_count{endpoint=\"simulate\"} 4\n"));
        assert_eq!(inf_count, 4.0, "+Inf bucket equals _count");
        assert!(text.contains("lat_seconds_sum{endpoint=\"simulate\"} "));
        // Label escaping holds inside histogram label sets too.
        let mut b = MetricsBuilder::new();
        b.histogram("esc_seconds", &[("worker", "a\"b\\c")], &h.snapshot());
        assert!(b
            .finish()
            .contains("esc_seconds_sum{worker=\"a\\\"b\\\\c\"} "));
    }
}
