//! Prometheus text-exposition rendering (format version 0.0.4) for the
//! worker's and the gateway's `GET /metrics` endpoints — counters and
//! gauges only, which is all a scrape of this service needs.

/// The `content-type` a Prometheus scrape expects.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Accumulates one exposition document: `# HELP`/`# TYPE` headers
/// followed by sample lines, family by family.
#[derive(Debug, Default)]
pub struct MetricsBuilder {
    out: String,
}

impl MetricsBuilder {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a metric family: emits its `# HELP` and `# TYPE` lines.
    /// Follow with [`MetricsBuilder::sample`] calls for the same name.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) -> &mut Self {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// One sample line. `labels` are `(name, value)` pairs; label values
    /// are escaped per the exposition format.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        // Counters and gauges here are integral or seconds; `{}` prints
        // both without exponent noise.
        self.out.push_str(&format!("{value}"));
        self.out.push('\n');
        self
    }

    /// A one-sample family (header + single unlabeled line).
    pub fn scalar(&mut self, name: &str, help: &str, kind: &str, value: f64) -> &mut Self {
        self.family(name, help, kind);
        self.sample(name, &[], value)
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_families_labels_and_escapes() {
        let mut b = MetricsBuilder::new();
        b.family("x_total", "things", "counter");
        b.sample("x_total", &[("endpoint", "simulate")], 3.0);
        b.sample("x_total", &[("endpoint", "a\"b\\c")], 1.5);
        b.scalar("up", "liveness", "gauge", 1.0);
        let text = b.finish();
        assert!(text.contains("# HELP x_total things\n# TYPE x_total counter\n"));
        assert!(text.contains("x_total{endpoint=\"simulate\"} 3\n"));
        assert!(text.contains("x_total{endpoint=\"a\\\"b\\\\c\"} 1.5\n"));
        assert!(text.ends_with("up 1\n"));
    }
}
