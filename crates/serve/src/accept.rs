//! The shared accept-pool machinery both servers in this workspace run
//! on: a blocking accept loop with shutdown checks, and a registry of
//! live connections so shutdown can unblock handlers parked in idle
//! keep-alive reads instead of waiting them out. `mcdla-serve`'s worker
//! and `mcdla-cluster`'s gateway differ only in what they do *per
//! request* — everything about accepting and tearing down connections
//! lives here once.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Runs one acceptor thread's loop: accept, re-check the shutdown flag,
/// hand the connection to `handle`. Returns when `shutdown` is set (the
/// owner pokes one connection per acceptor to wake them from `accept`).
pub fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    mut handle: impl FnMut(TcpStream),
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                handle(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Clones of every live connection's socket, so shutdown can unblock
/// handlers parked in an idle read instead of waiting them out.
#[derive(Debug, Default)]
pub struct ConnRegistry {
    slots: Mutex<Vec<Option<TcpStream>>>,
}

impl ConnRegistry {
    /// Registers a connection for the duration of the returned guard
    /// (deregistered on drop, however the handler exits). A connection
    /// whose socket cannot be cloned is served unregistered.
    pub fn register<'a>(&'a self, stream: &TcpStream) -> ConnGuard<'a> {
        let id = stream.try_clone().ok().map(|clone| {
            let mut slots = self.slots.lock().expect("conn registry lock");
            if let Some(i) = slots.iter().position(Option::is_none) {
                slots[i] = Some(clone);
                i
            } else {
                slots.push(Some(clone));
                slots.len() - 1
            }
        });
        ConnGuard { registry: self, id }
    }

    fn deregister(&self, id: usize) {
        self.slots.lock().expect("conn registry lock")[id] = None;
    }

    /// Read-closes every live connection: blocked reads return EOF at
    /// once and the handlers exit, while the write half stays open so
    /// an in-flight response still reaches its client.
    pub fn close_all(&self) {
        for stream in self
            .slots
            .lock()
            .expect("conn registry lock")
            .iter()
            .flatten()
        {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// Deregisters a connection slot however the handler exits.
#[derive(Debug)]
pub struct ConnGuard<'a> {
    registry: &'a ConnRegistry,
    id: Option<usize>,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.registry.deregister(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_reuses_slots_and_closes_live_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let registry = ConnRegistry::default();
        let guard = registry.register(&server_side);
        assert_eq!(registry.slots.lock().unwrap().len(), 1);
        drop(guard);
        // The freed slot is reused, not appended.
        let _guard = registry.register(&server_side);
        assert_eq!(registry.slots.lock().unwrap().len(), 1);

        // close_all read-closes the registered half: the server side's
        // blocked read returns EOF promptly.
        let mut read_half = server_side.try_clone().unwrap();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            std::io::Read::read(&mut read_half, &mut buf)
        });
        std::thread::sleep(Duration::from_millis(50));
        registry.close_all();
        let n = reader.join().unwrap().unwrap();
        assert_eq!(n, 0, "read must observe EOF after close_all");
        drop(client);
    }
}
