//! The shared serving core both servers in this workspace run on: a
//! non-blocking readiness loop over raw epoll (see [`crate::epoll`])
//! that owns every connection's I/O, plus a bounded worker pool that
//! owns the blocking work. `mcdla-serve`'s worker and `mcdla-cluster`'s
//! gateway differ only in their [`Service`] implementation — everything
//! about accepting, parsing, pipelining, load-shedding, timeouts, and
//! teardown lives here once.
//!
//! ## Architecture
//!
//! Each loop thread runs `epoll_wait` over a listener, an eventfd
//! waker, and its live connections, held in a generation-tagged slab
//! (O(1) insert/remove off a free list — this replaces the old
//! `ConnRegistry`'s linear slot scan under one mutex). Bytes read from
//! a connection land in its per-connection inbox; [`parse_request`]
//! consumes complete requests off the front, so HTTP/1.1 pipelining
//! falls out naturally and a request split across TCP segments just
//! waits for its missing bytes.
//!
//! Parsed requests take one of three paths:
//!
//! * **fast**: [`Service::fast`] answers inline on the loop thread
//!   (cheap GETs, cache hits) — the response bytes go out through the
//!   connection's outbox, many per wakeup.
//! * **heavy**: the connection is *detached* — deregistered from epoll,
//!   switched to blocking — and shipped with its unparsed inbox to the
//!   worker pool behind a bounded admission queue. The worker answers
//!   with the existing blocking handler code ([`Service::handle`]),
//!   then re-attaches the connection to its loop through a mailbox +
//!   waker. One heavy request per connection is in flight at a time,
//!   and a re-attached connection's next request re-enters the queue at
//!   the tail: that is the per-client fairness policy.
//! * **shed**: when the admission queue is full, [`Service::shed`]
//!   answers 429 + `Retry-After` inline and the connection stays open.
//!
//! The loop also owns the timers the old thread-per-connection stack
//! delegated to `SO_RCVTIMEO`: idle keep-alive connections close
//! silently after `idle_timeout`, and a connection stuck mid-request
//! (slow header or body) is answered 408 after `request_timeout`.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::epoll::{
    Epoll, Event, Waker, EPOLLERR, EPOLLEXCLUSIVE, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::http::{incomplete_error, parse_request, Request, WireError};

/// Token delivered for the shared listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token delivered for the loop's eventfd waker.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Outbox backlog (bytes) past which a connection stops being read —
/// backpressure for pipelined clients that send faster than they drain.
const OUTBOX_HIGH_WATER: usize = 256 * 1024;

/// Inbox cap: one maximal request (head + body) plus slack. A buffer
/// this full with no complete request in it is rejected by the parser's
/// own limits, so the cap never wedges a legitimate request.
const INBOX_CAP: usize = crate::http::MAX_HEAD_BYTES + crate::http::MAX_BODY_BYTES + 16;

/// Most connections accepted per listener wakeup, so one accept flood
/// cannot starve live connections of loop time.
const ACCEPT_BURST: usize = 256;

/// Blocking-write ceiling for detached connections, so a worker thread
/// cannot wedge forever behind a dead client mid-response.
const WORKER_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A response the event loop can send without leaving the loop thread.
#[derive(Debug)]
pub struct FastAnswer {
    /// The complete serialized response (status line through body).
    pub bytes: Vec<u8>,
    /// Whether the connection stays open afterwards.
    pub keep_alive: bool,
}

/// What a server plugs into the event loop: the split between work the
/// loop thread may do inline and work that needs a pool worker.
pub trait Service: Send + Sync + 'static {
    /// Answers a request inline when it is cheap (no simulation, no
    /// upstream I/O): cheap GETs, cache hits, input-validation 4xxs.
    /// `None` routes the request to the worker pool.
    fn fast(&self, request: &Request) -> Option<FastAnswer>;

    /// Handles one request on a pool worker with a blocking stream
    /// (buffered responses and chunked streams alike). `queued` is how
    /// long the request waited in the admission queue before a worker
    /// picked it up (feeds the wide-event `queue_us` field). Returns
    /// whether the connection should stay open.
    fn handle(&self, request: &Request, stream: &mut TcpStream, queued: Duration) -> bool;

    /// The load-shedding answer (429 + `Retry-After`) for a request
    /// that found the admission queue full.
    fn shed(&self, request: &Request) -> FastAnswer;

    /// Serializes a wire-level parse/timeout failure. The connection
    /// always closes after this answer.
    fn wire_error(&self, error: &WireError) -> Vec<u8>;
}

/// Event-loop sizing and timeouts.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Event-loop threads (each with its own epoll instance).
    pub loops: usize,
    /// Worker-pool threads for heavy (blocking) requests.
    pub workers: usize,
    /// Admission-queue bound: heavy requests waiting beyond the pool;
    /// one more means a 429.
    pub queue_depth: usize,
    /// Idle keep-alive connections close silently after this long.
    pub idle_timeout: Duration,
    /// Connections stuck mid-request (slow header/body) answer 408
    /// after this long.
    pub request_timeout: Duration,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            loops: 1,
            workers: 4,
            queue_depth: 128,
            idle_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters the event loop maintains, for `/stats` and `/metrics`.
#[derive(Debug, Default)]
pub struct LoopStats {
    accepted: AtomicU64,
    open: AtomicU64,
    shed: AtomicU64,
    request_timeouts: AtomicU64,
    idle_closed: AtomicU64,
}

impl LoopStats {
    /// Connections accepted since start.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections attached to a loop right now (detached connections
    /// being served by a worker are not counted).
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Requests answered 429 because the admission queue was full.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests answered 408 (stalled mid-head or mid-body).
    pub fn request_timeouts(&self) -> u64 {
        self.request_timeouts.load(Ordering::Relaxed)
    }

    /// Idle keep-alive connections closed silently.
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }
}

/// A connection handed back from a worker to its loop.
struct Reattach {
    stream: TcpStream,
    inbox: Vec<u8>,
}

/// One loop's handoff point: workers push re-attachments, then wake it.
struct Mailbox {
    inbox: Mutex<Vec<Reattach>>,
    waker: Waker,
}

/// A heavy request in the admission queue, carrying its connection.
struct Job {
    stream: TcpStream,
    /// Response bytes for earlier pipelined requests, written first so
    /// responses leave in request order.
    pending_out: Vec<u8>,
    /// Unparsed inbox remainder (later pipelined requests).
    inbox: Vec<u8>,
    request: Request,
    /// Loop index to re-attach to afterwards.
    home: usize,
    /// When the request entered the admission queue.
    enqueued: Instant,
}

/// State shared by loops, workers, and the handle.
struct Core {
    shutdown: AtomicBool,
    queued: AtomicUsize,
    queue_depth: usize,
    mailboxes: Vec<Mailbox>,
    stats: Arc<LoopStats>,
    idle_timeout: Duration,
    request_timeout: Duration,
}

/// A running event-loop server; dropping the handle leaks the threads,
/// call [`LoopHandle::shutdown`] for a clean stop.
pub struct LoopHandle {
    core: Arc<Core>,
    loops: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopHandle")
            .field("loops", &self.loops.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl LoopHandle {
    /// Stops the loops and workers: new connections stop being
    /// accepted, attached connections close, queued heavy requests
    /// drain through the pool (in-flight responses finish), then every
    /// thread joins.
    pub fn shutdown(self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        for mailbox in &self.core.mailboxes {
            mailbox.waker.wake();
        }
        for t in self.loops {
            let _ = t.join();
        }
        // The loops owned every queue sender; with them gone the
        // workers drain what is queued and see the channel close.
        for t in self.workers {
            let _ = t.join();
        }
    }

    /// Blocks until the loops exit (they only do on [`shutdown`] from
    /// another handle-less path, i.e. never in normal operation) — the
    /// foreground `run()` entry points park here.
    pub fn join(self) {
        for t in self.loops {
            let _ = t.join();
        }
        for t in self.workers {
            let _ = t.join();
        }
    }
}

/// Starts `config.loops` event-loop threads over `listener` and
/// `config.workers` pool workers serving `service`. `stats` is shared
/// so the caller can report loop counters from its own endpoints.
pub fn spawn_event_loop<S: Service>(
    listener: TcpListener,
    service: Arc<S>,
    config: &LoopConfig,
    stats: Arc<LoopStats>,
) -> std::io::Result<LoopHandle> {
    listener.set_nonblocking(true)?;
    let loops = config.loops.max(1);
    let mut mailboxes = Vec::with_capacity(loops);
    for _ in 0..loops {
        mailboxes.push(Mailbox {
            inbox: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        });
    }
    let core = Arc::new(Core {
        shutdown: AtomicBool::new(false),
        queued: AtomicUsize::new(0),
        queue_depth: config.queue_depth.max(1),
        mailboxes,
        stats,
        idle_timeout: config.idle_timeout,
        request_timeout: config.request_timeout,
    });
    // The queue bound is enforced by `Core::queued`, not the channel,
    // so a full queue sheds without ever constructing a blocked send.
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));

    let mut loop_threads = Vec::with_capacity(loops);
    for i in 0..loops {
        let listener = listener.try_clone()?;
        let core = core.clone();
        let service = service.clone();
        let job_tx = job_tx.clone();
        loop_threads.push(
            std::thread::Builder::new()
                .name(format!("mcdla-io-{i}"))
                .spawn(move || run_loop(i, loops, listener, core, service, job_tx))?,
        );
    }
    drop(job_tx); // loops hold the only senders now

    let mut worker_threads = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let core = core.clone();
        let service = service.clone();
        let job_rx = job_rx.clone();
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("mcdla-worker-{i}"))
                .spawn(move || run_worker(core, service, job_rx))?,
        );
    }

    Ok(LoopHandle {
        core,
        loops: loop_threads,
        workers: worker_threads,
    })
}

/// One attached connection's state.
struct Conn {
    stream: TcpStream,
    gen: u32,
    inbox: Vec<u8>,
    outbox: Vec<u8>,
    out_pos: usize,
    /// Events currently registered with epoll.
    interest: u32,
    last_activity: Instant,
    /// Close once the outbox drains; no further reads or parses.
    closing: bool,
    /// The peer finished sending (EOF seen).
    eof: bool,
}

/// The connection table: a slab with an O(1) free list. Tokens carry
/// `(generation << 32) | slot` so a stale epoll event for a recycled
/// slot (same fd number, new connection) can never touch the newcomer.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: VecDeque<usize>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            gens: Vec::new(),
            free: VecDeque::new(),
        }
    }

    fn insert(&mut self, stream: TcpStream, inbox: Vec<u8>) -> (usize, u64) {
        let slot = match self.free.pop_front() {
            Some(slot) => slot,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let gen = self.gens[slot];
        self.slots[slot] = Some(Conn {
            stream,
            gen,
            inbox,
            outbox: Vec::new(),
            out_pos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            last_activity: Instant::now(),
            closing: false,
            eof: false,
        });
        (slot, token(slot, gen))
    }

    /// The connection for `slot` if its generation still matches.
    fn get(&mut self, slot: usize, gen: u32) -> Option<&mut Conn> {
        self.slots.get_mut(slot)?.as_mut().filter(|c| c.gen == gen)
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot)?.take()?;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push_back(slot);
        Some(conn)
    }

    fn live_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect()
    }
}

fn token(slot: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

fn untoken(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

/// How far [`advance`] got with a connection.
enum Advanced {
    /// Still attached to the loop (possibly with output pending).
    Attached,
    /// Detached to the worker pool; the slot is gone.
    Detached,
    /// Closed; the slot is gone.
    Closed,
}

fn run_loop<S: Service>(
    loop_idx: usize,
    loop_count: usize,
    listener: TcpListener,
    core: Arc<Core>,
    service: Arc<S>,
    job_tx: mpsc::Sender<Job>,
) {
    let epoll = match Epoll::new() {
        Ok(ep) => ep,
        Err(e) => {
            mcdla_obs::log::error(
                "serve",
                "epoll_create_failed",
                &[("error", e.to_string().into())],
            );
            return;
        }
    };
    // With several loops sharing the listener, EPOLLEXCLUSIVE wakes one
    // loop per connection instead of all of them.
    let listener_events = EPOLLIN | if loop_count > 1 { EPOLLEXCLUSIVE } else { 0 };
    if let Err(e) = epoll.add(listener.as_raw_fd(), listener_events, TOKEN_LISTENER) {
        mcdla_obs::log::error(
            "serve",
            "epoll_register_listener_failed",
            &[("error", e.to_string().into())],
        );
        return;
    }
    let waker_fd = core.mailboxes[loop_idx].waker.fd();
    if let Err(e) = epoll.add(waker_fd, EPOLLIN, TOKEN_WAKER) {
        mcdla_obs::log::error(
            "serve",
            "epoll_register_waker_failed",
            &[("error", e.to_string().into())],
        );
        return;
    }

    let mut slab = Slab::new();
    let mut events = vec![
        Event {
            events: 0,
            token: 0
        };
        256
    ];
    // Sweep often enough that short test-sized timeouts still fire
    // promptly, but never more than once per 25 ms.
    let sweep_every = (core.idle_timeout.min(core.request_timeout) / 4)
        .clamp(Duration::from_millis(25), Duration::from_millis(500));
    let mut last_sweep = Instant::now();

    loop {
        let n = match epoll.wait(&mut events, sweep_every.as_millis() as i32) {
            Ok(n) => n,
            Err(e) => {
                mcdla_obs::log::error(
                    "serve",
                    "epoll_wait_failed",
                    &[("error", e.to_string().into())],
                );
                break;
            }
        };
        if core.shutdown.load(Ordering::SeqCst) {
            break;
        }
        for event in events.iter().take(n) {
            // Copy out of the packed event before touching the fields.
            let (ready, tok) = ({ event.events }, { event.token });
            match tok {
                TOKEN_LISTENER => accept_burst(&listener, &epoll, &mut slab, &core),
                TOKEN_WAKER => core.mailboxes[loop_idx].waker.drain(),
                tok => {
                    let (slot, gen) = untoken(tok);
                    if slab.get(slot, gen).is_none() {
                        continue; // stale event for a recycled slot
                    }
                    if ready & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                        read_ready(
                            slot, gen, &mut slab, &epoll, &core, &service, &job_tx, loop_idx,
                        );
                    }
                    if ready & EPOLLOUT != 0 {
                        if let Some(conn) = slab.get(slot, gen) {
                            if !conn.outbox.is_empty() || conn.closing {
                                flush(slot, &mut slab, &epoll, &core);
                            }
                        }
                    }
                }
            }
        }
        // Re-attachments from the worker pool (mailbox drained after
        // the waker event, but also opportunistically every pass).
        reattach_from_mailbox(loop_idx, &mut slab, &epoll, &core, &service, &job_tx);
        if last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            sweep_timeouts(&mut slab, &epoll, &core, &service);
        }
    }
    // Teardown: dropping the slab closes every attached connection.
    // Queued jobs drain through the workers; mailbox re-attachments
    // arriving after this point are dropped (closed) by the workers
    // noticing the shutdown flag.
}

fn accept_burst(listener: &TcpListener, epoll: &Epoll, slab: &mut Slab, core: &Core) {
    for _ in 0..ACCEPT_BURST {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if core.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                attach(stream, Vec::new(), slab, epoll, core);
                core.stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake):
                // back off briefly instead of spinning level-triggered.
                std::thread::sleep(Duration::from_millis(5));
                return;
            }
        }
    }
}

/// Inserts a connection into the slab and registers it with epoll.
fn attach(stream: TcpStream, inbox: Vec<u8>, slab: &mut Slab, epoll: &Epoll, core: &Core) {
    let fd = stream.as_raw_fd();
    let (slot, tok) = slab.insert(stream, inbox);
    if epoll.add(fd, EPOLLIN | EPOLLRDHUP, tok).is_err() {
        slab.remove(slot);
        return;
    }
    core.stats.open.fetch_add(1, Ordering::Relaxed);
}

fn close_conn(slot: usize, slab: &mut Slab, core: &Core) {
    if slab.remove(slot).is_some() {
        // Dropping the stream closes the fd, which also removes it
        // from the epoll interest set.
        core.stats.open.fetch_sub(1, Ordering::Relaxed);
    }
}

#[allow(clippy::too_many_arguments)]
fn read_ready<S: Service>(
    slot: usize,
    gen: u32,
    slab: &mut Slab,
    epoll: &Epoll,
    core: &Core,
    service: &Arc<S>,
    job_tx: &mpsc::Sender<Job>,
    loop_idx: usize,
) {
    let Some(conn) = slab.get(slot, gen) else {
        return;
    };
    let mut buf = [0u8; 16 * 1024];
    loop {
        if conn.closing
            || conn.inbox.len() >= INBOX_CAP
            || conn.outbox.len() - conn.out_pos > OUTBOX_HIGH_WATER
        {
            break;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.inbox.extend_from_slice(&buf[..n]);
                conn.last_activity = Instant::now();
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Reset: nothing can be answered.
                close_conn(slot, slab, core);
                return;
            }
        }
    }
    match advance(slot, gen, slab, epoll, core, service, job_tx, loop_idx) {
        Advanced::Attached => flush(slot, slab, epoll, core),
        Advanced::Detached | Advanced::Closed => {}
    }
}

/// Parses and answers everything parseable in the connection's inbox.
/// Fast answers accumulate in the outbox (flushed by the caller);
/// a heavy request detaches the connection to the worker pool.
#[allow(clippy::too_many_arguments)]
fn advance<S: Service>(
    slot: usize,
    gen: u32,
    slab: &mut Slab,
    epoll: &Epoll,
    core: &Core,
    service: &Arc<S>,
    job_tx: &mpsc::Sender<Job>,
    loop_idx: usize,
) -> Advanced {
    loop {
        let Some(conn) = slab.get(slot, gen) else {
            return Advanced::Closed;
        };
        if conn.closing {
            return Advanced::Attached;
        }
        if conn.outbox.len() - conn.out_pos > OUTBOX_HIGH_WATER {
            // Backpressure: stop parsing until the peer drains.
            return Advanced::Attached;
        }
        match parse_request(&conn.inbox) {
            Err(error) => {
                let bytes = service.wire_error(&error);
                conn.outbox.extend_from_slice(&bytes);
                conn.closing = true;
                conn.inbox.clear();
                return Advanced::Attached;
            }
            Ok(None) => {
                if conn.eof {
                    if conn.inbox.is_empty() {
                        // Clean close (or everything answered).
                        conn.closing = true;
                        if conn.outbox.len() == conn.out_pos {
                            close_conn(slot, slab, core);
                            return Advanced::Closed;
                        }
                    } else {
                        // The peer stopped mid-request: name the
                        // truncation (head vs body) and close.
                        let error = incomplete_error(&conn.inbox, false);
                        let bytes = service.wire_error(&error);
                        conn.outbox.extend_from_slice(&bytes);
                        conn.closing = true;
                        conn.inbox.clear();
                    }
                }
                return Advanced::Attached;
            }
            Ok(Some((request, consumed))) => {
                conn.inbox.drain(..consumed);
                conn.last_activity = Instant::now();
                if let Some(answer) = service.fast(&request) {
                    conn.outbox.extend_from_slice(&answer.bytes);
                    if !answer.keep_alive {
                        conn.closing = true;
                        conn.inbox.clear();
                        return Advanced::Attached;
                    }
                    continue;
                }
                // Heavy: admission control, then detach to the pool.
                let admitted = core
                    .queued
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                        (q < core.queue_depth).then_some(q + 1)
                    })
                    .is_ok();
                if !admitted {
                    core.stats.shed.fetch_add(1, Ordering::Relaxed);
                    let keep = request.keep_alive;
                    let answer = service.shed(&request);
                    conn.outbox.extend_from_slice(&answer.bytes);
                    if !(answer.keep_alive && keep) {
                        conn.closing = true;
                        conn.inbox.clear();
                        return Advanced::Attached;
                    }
                    continue;
                }
                let conn = slab.remove(slot).expect("checked live above");
                core.stats.open.fetch_sub(1, Ordering::Relaxed);
                let _ = epoll.del(conn.stream.as_raw_fd());
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(WORKER_WRITE_TIMEOUT));
                let pending_out = conn.outbox[conn.out_pos..].to_vec();
                let job = Job {
                    stream: conn.stream,
                    pending_out,
                    inbox: conn.inbox,
                    request,
                    home: loop_idx,
                    enqueued: Instant::now(),
                };
                if job_tx.send(job).is_err() {
                    // Workers are gone (shutdown): the connection
                    // just closes.
                    core.queued.fetch_sub(1, Ordering::SeqCst);
                }
                return Advanced::Detached;
            }
        }
    }
}

/// Writes as much of the outbox as the socket accepts, registering for
/// `EPOLLOUT` when it fills and closing once a draining connection is
/// done.
fn flush(slot: usize, slab: &mut Slab, epoll: &Epoll, core: &Core) {
    let should_close = {
        let Some(conn) = slab.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        loop {
            if conn.out_pos >= conn.outbox.len() {
                conn.outbox.clear();
                conn.out_pos = 0;
                if !conn.closing && conn.interest & EPOLLOUT != 0 {
                    let want = EPOLLIN | EPOLLRDHUP;
                    if epoll
                        .modify(conn.stream.as_raw_fd(), want, token(slot, conn.gen))
                        .is_ok()
                    {
                        conn.interest = want;
                    }
                }
                break conn.closing; // a drained draining conn closes
            }
            match conn.stream.write(&conn.outbox[conn.out_pos..]) {
                Ok(0) => break true,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let want = EPOLLIN | EPOLLRDHUP | EPOLLOUT;
                    if conn.interest != want
                        && epoll
                            .modify(conn.stream.as_raw_fd(), want, token(slot, conn.gen))
                            .is_ok()
                    {
                        conn.interest = want;
                    }
                    break false;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break true,
            }
        }
    };
    if should_close {
        close_conn(slot, slab, core);
    }
}

fn reattach_from_mailbox<S: Service>(
    loop_idx: usize,
    slab: &mut Slab,
    epoll: &Epoll,
    core: &Core,
    service: &Arc<S>,
    job_tx: &mpsc::Sender<Job>,
) {
    let drained = {
        let mut inbox = core.mailboxes[loop_idx].inbox.lock().expect("mailbox lock");
        std::mem::take(&mut *inbox)
    };
    for re in drained {
        if core.shutdown.load(Ordering::SeqCst) {
            continue; // dropping the stream closes it
        }
        if re.stream.set_nonblocking(true).is_err() {
            continue;
        }
        let fd = re.stream.as_raw_fd();
        let (slot, tok) = slab.insert(re.stream, re.inbox);
        if epoll.add(fd, EPOLLIN | EPOLLRDHUP, tok).is_err() {
            slab.remove(slot);
            continue;
        }
        core.stats.open.fetch_add(1, Ordering::Relaxed);
        // The carried inbox may already hold complete pipelined
        // requests: serve them now rather than waiting for more bytes.
        let (_, gen) = untoken(tok);
        match advance(slot, gen, slab, epoll, core, service, job_tx, loop_idx) {
            Advanced::Attached => flush(slot, slab, epoll, core),
            Advanced::Detached | Advanced::Closed => {}
        }
    }
}

/// Closes idle keep-alive connections and answers 408 to connections
/// stalled mid-request.
fn sweep_timeouts<S: Service>(slab: &mut Slab, epoll: &Epoll, core: &Core, service: &Arc<S>) {
    let now = Instant::now();
    for slot in slab.live_slots() {
        let Some(conn) = slab.slots[slot].as_mut() else {
            continue;
        };
        if conn.closing {
            // A draining connection whose peer never reads: give it
            // the request timeout, then drop it.
            if now.duration_since(conn.last_activity) > core.request_timeout {
                close_conn(slot, slab, core);
            }
            continue;
        }
        let idle = now.duration_since(conn.last_activity);
        if !conn.inbox.is_empty() {
            if idle > core.request_timeout {
                core.stats.request_timeouts.fetch_add(1, Ordering::Relaxed);
                let error = incomplete_error(&conn.inbox, true);
                let bytes = service.wire_error(&error);
                conn.outbox.extend_from_slice(&bytes);
                conn.closing = true;
                conn.inbox.clear();
                flush(slot, slab, epoll, core);
            }
        } else if conn.outbox.len() == conn.out_pos && idle > core.idle_timeout {
            core.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
            close_conn(slot, slab, core);
        }
    }
}

fn run_worker<S: Service>(
    core: Arc<Core>,
    service: Arc<S>,
    job_rx: Arc<Mutex<mpsc::Receiver<Job>>>,
) {
    loop {
        // Holding the lock across `recv` is the standard shared-
        // receiver pattern: exactly one worker waits in `recv`, the
        // rest wait on the mutex, and a delivered job releases both.
        let job = {
            let rx = job_rx.lock().expect("job receiver lock");
            rx.recv()
        };
        let Ok(mut job) = job else { return };
        core.queued.fetch_sub(1, Ordering::SeqCst);
        if !job.pending_out.is_empty() && job.stream.write_all(&job.pending_out).is_err() {
            continue; // client gone; earlier responses undeliverable
        }
        let keep = service.handle(&job.request, &mut job.stream, job.enqueued.elapsed());
        if keep && !core.shutdown.load(Ordering::SeqCst) {
            let mailbox = &core.mailboxes[job.home];
            mailbox.inbox.lock().expect("mailbox lock").push(Reattach {
                stream: job.stream,
                inbox: job.inbox,
            });
            mailbox.waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_conn() -> TcpStream {
        // A pair of connected sockets; only the accepted end is kept.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
    }

    #[test]
    fn slab_reuses_slots_off_the_free_list() {
        let mut slab = Slab::new();
        let (a, _) = slab.insert(dummy_conn(), Vec::new());
        let (b, _) = slab.insert(dummy_conn(), Vec::new());
        assert_eq!((a, b), (0, 1));
        slab.remove(a);
        // The freed slot is recycled, not appended.
        let (c, _) = slab.insert(dummy_conn(), Vec::new());
        assert_eq!(c, a);
        assert_eq!(slab.slots.len(), 2);
    }

    #[test]
    fn slab_generations_fence_stale_tokens() {
        let mut slab = Slab::new();
        let (slot, tok) = slab.insert(dummy_conn(), Vec::new());
        let (_, gen) = untoken(tok);
        assert!(slab.get(slot, gen).is_some());
        slab.remove(slot);
        let (slot2, tok2) = slab.insert(dummy_conn(), Vec::new());
        assert_eq!(slot2, slot, "slot recycled");
        // The stale token no longer resolves; the fresh one does.
        assert!(slab.get(slot, gen).is_none());
        let (_, gen2) = untoken(tok2);
        assert!(slab.get(slot, gen2).is_some());
        assert_ne!(gen, gen2);
    }

    #[test]
    fn slab_insert_remove_is_balanced_at_scale() {
        // Regression for the old ConnRegistry's O(n) slot scan: a
        // thousand insert/remove cycles against a warm slab touch only
        // the free list, and the slab never grows past its high-water
        // mark.
        let mut slab = Slab::new();
        let conns: Vec<(usize, u64)> = (0..64)
            .map(|_| slab.insert(dummy_conn(), Vec::new()))
            .collect();
        for (slot, _) in &conns {
            slab.remove(*slot);
        }
        for _ in 0..1000 {
            let (slot, _) = slab.insert(dummy_conn(), Vec::new());
            slab.remove(slot);
        }
        assert_eq!(slab.slots.len(), 64, "no growth past the high-water mark");
        assert_eq!(slab.free.len(), 64);
    }

    #[test]
    fn tokens_round_trip() {
        for (slot, gen) in [
            (0usize, 0u32),
            (5, 1),
            (4_000_000, 77),
            (usize::from(u16::MAX), u32::MAX - 2),
        ] {
            assert_eq!(untoken(token(slot, gen)), (slot, gen));
        }
    }
}
