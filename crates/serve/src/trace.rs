//! Request-trace wire helpers shared by the worker and the gateway:
//! request-id extraction, trace → JSON rendering, the `/debug/requests`
//! listing, wide-event emission, the `/metrics/history` body, and
//! build-info blocks.
//!
//! The observability contract (`docs/observability.md`):
//!
//! * every response echoes `X-Mcdla-Request-Id` (propagated from the
//!   request when well-formed, freshly generated otherwise) — including
//!   429 sheds, 408 timeouts, and streamed response heads;
//! * every request records a trace into the server's
//!   [`FlightRecorder`](mcdla_obs::FlightRecorder), whether or not the
//!   client asked to see it;
//! * `?trace=1` grafts the finished span tree into a JSON response
//!   body under a top-level `"trace"` key;
//! * every completed request emits one *wide event* — a single flat
//!   JSON line through [`mcdla_obs::log`] — at `info` when it was
//!   slow (over `MCDLA_SLOW_MS`), shed, timed out, or 5xx, and at
//!   `debug` otherwise.

use std::sync::Arc;

use mcdla_obs::log::{Level, LogValue};
use mcdla_obs::{Histogram, HistogramSnapshot, HistoryDump, TraceRecord};
use serde::Value;

use crate::http::{error_body, write_response_with, Request, WireError};

/// The request-id header, lower-cased as the parsed [`Request`] stores
/// header names.
pub const REQUEST_ID_HEADER: &str = "x-mcdla-request-id";

/// The request id for a request: the propagated `X-Mcdla-Request-Id`
/// when present and well-formed (see
/// [`valid_request_id`](mcdla_obs::valid_request_id)), else a fresh
/// id generated at this edge.
pub fn request_trace_id(request: &Request) -> String {
    match request.header(REQUEST_ID_HEADER) {
        Some(id) if mcdla_obs::valid_request_id(id) => id.to_string(),
        _ => mcdla_obs::request_id(),
    }
}

/// A fixed set of labeled latency histograms (one per endpoint): the
/// handles are pre-registered so the request path never touches a map.
#[derive(Debug)]
pub struct LatencyFamily {
    entries: Vec<(&'static str, Arc<Histogram>)>,
}

impl LatencyFamily {
    /// A family with one histogram per label.
    pub fn new(labels: &[&'static str]) -> LatencyFamily {
        LatencyFamily {
            entries: labels
                .iter()
                .map(|&l| (l, Arc::new(Histogram::new())))
                .collect(),
        }
    }

    /// The histogram for a label (`None` for labels not registered).
    pub fn get(&self, label: &str) -> Option<&Arc<Histogram>> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, h)| h)
    }

    /// `(label, snapshot)` pairs in registration order.
    pub fn snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.entries
            .iter()
            .map(|(l, h)| (*l, h.snapshot()))
            .collect()
    }
}

/// Renders a completed trace as the wire JSON: identity, outcome, and
/// the span tree (span `parent` indexes into the same `spans` array).
pub fn trace_value(service: &str, rec: &TraceRecord) -> Value {
    Value::Map(vec![
        ("id".into(), Value::Str(rec.id.clone())),
        ("service".into(), Value::Str(service.into())),
        ("endpoint".into(), Value::Str(rec.endpoint.clone())),
        ("status".into(), Value::U64(u64::from(rec.status))),
        ("started_unix_ms".into(), Value::U64(rec.started_unix_ms)),
        ("total_us".into(), Value::U64(rec.total_us)),
        (
            "spans".into(),
            Value::Seq(
                rec.spans
                    .iter()
                    .map(|s| {
                        Value::Map(vec![
                            ("name".into(), Value::Str(s.name.clone())),
                            (
                                "parent".into(),
                                match s.parent {
                                    Some(p) => Value::U64(p as u64),
                                    None => Value::Null,
                                },
                            ),
                            ("start_us".into(), Value::U64(s.start_us)),
                            ("dur_us".into(), Value::U64(s.dur_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One line of the `/debug/requests` listing: the trace identity and
/// totals without the span tree (fetch `/debug/trace/<id>` for that).
pub fn trace_summary(rec: &TraceRecord) -> Value {
    Value::Map(vec![
        ("id".into(), Value::Str(rec.id.clone())),
        ("endpoint".into(), Value::Str(rec.endpoint.clone())),
        ("status".into(), Value::U64(u64::from(rec.status))),
        ("started_unix_ms".into(), Value::U64(rec.started_unix_ms)),
        ("total_us".into(), Value::U64(rec.total_us)),
        ("spans".into(), Value::U64(rec.spans.len() as u64)),
        ("seq".into(), Value::U64(rec.seq)),
    ])
}

/// Builds the `GET /debug/requests` body from a recorder's contents:
/// newest first by default, slowest first with `sort=slow`, filtered
/// by `endpoint=<label>`, truncated to `limit=<n>` entries (default
/// 100).
pub fn debug_requests_value(
    service: &str,
    recorder: &mcdla_obs::FlightRecorder,
    sort: Option<&str>,
    endpoint: Option<&str>,
    limit: Option<&str>,
) -> Value {
    let mut traces = recorder.recent();
    if let Some(ep) = endpoint {
        traces.retain(|t| t.endpoint == ep);
    }
    if sort == Some("slow") {
        // The `seq` tie-break makes the order total: equal-latency
        // entries list newest first instead of in whatever order the
        // striped recorder surfaced them.
        traces.sort_by_key(|t| (std::cmp::Reverse(t.total_us), std::cmp::Reverse(t.seq)));
    }
    let matched = traces.len();
    let limit = limit.and_then(|l| l.parse::<usize>().ok()).unwrap_or(100);
    traces.truncate(limit);
    Value::Map(vec![
        ("service".into(), Value::Str(service.into())),
        ("capacity".into(), Value::U64(recorder.capacity() as u64)),
        ("matched".into(), Value::U64(matched as u64)),
        ("count".into(), Value::U64(traces.len() as u64)),
        (
            "requests".into(),
            Value::Seq(traces.iter().map(|t| trace_summary(t)).collect()),
        ),
    ])
}

/// Grafts `(key, value)` into a JSON-object body, re-serializing
/// pretty. A body that does not parse as an object comes back
/// unchanged (defensive: graft targets are bodies this process just
/// serialized).
pub fn graft_json(body: &str, key: &str, value: Value) -> String {
    match serde::json::parse(body) {
        Ok(Value::Map(mut entries)) => {
            entries.push((key.into(), value));
            serde::json::to_string_pretty(&Value::Map(entries))
        }
        _ => body.to_string(),
    }
}

/// The build-info block for `/healthz` and `/stats`: crate version and
/// the compile-time git-ish build id.
pub fn build_value() -> Value {
    Value::Map(vec![
        (
            "version".into(),
            Value::Str(mcdla_obs::build_version().into()),
        ),
        ("id".into(), Value::Str(mcdla_obs::build_id().into())),
    ])
}

/// Reads `MCDLA_SLOW_MS`: a positive integer enables the slow-request
/// log at that threshold; unset, `0`, or unparsable disables it.
pub fn slow_ms_from_env() -> Option<u64> {
    std::env::var("MCDLA_SLOW_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
}

/// The wide-event level for a finished request: `info` when it needs
/// an operator's attention (slow per `MCDLA_SLOW_MS`, shed 429, timed
/// out 408, or 5xx), `debug` otherwise.
pub fn wide_event_level(slow_ms: Option<u64>, status: u16, total_us: u64) -> Level {
    let slow = slow_ms.is_some_and(|ms| total_us >= ms.saturating_mul(1000));
    if slow || status >= 500 || status == 429 || status == 408 {
        Level::Info
    } else {
        Level::Debug
    }
}

/// Emits the per-request *wide event*: one flat JSON line carrying the
/// whole request story — id, endpoint, status, cache disposition,
/// queue + service micros, response bytes — through the leveled
/// [`mcdla_obs::log`] pipeline (see [`wide_event_level`]). `cached` is
/// the cache disposition where the endpoint has one (`/simulate`,
/// `/grid`); `extra` carries tier-specific fields (the gateway adds
/// the upstream worker index).
#[allow(clippy::too_many_arguments)]
pub fn wide_event(
    target: &str,
    service: &str,
    slow_ms: Option<u64>,
    rec: &TraceRecord,
    cached: Option<bool>,
    queue_us: u64,
    bytes: u64,
    extra: &[(&str, LogValue)],
) {
    let level = wide_event_level(slow_ms, rec.status, rec.total_us);
    if !mcdla_obs::log::log_enabled(level, target) {
        return;
    }
    let mut fields: Vec<(&str, LogValue)> = vec![
        ("id", rec.id.as_str().into()),
        ("service", service.into()),
        ("endpoint", rec.endpoint.as_str().into()),
        ("status", rec.status.into()),
        (
            "cache",
            match cached {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "none",
            }
            .into(),
        ),
        ("queue_us", queue_us.into()),
        ("total_us", rec.total_us.into()),
        ("bytes", bytes.into()),
    ];
    fields.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    mcdla_obs::log::log(level, target, "request", &fields);
}

/// Serializes a wire-level failure answer (parse 4xx or stall 408):
/// the error body with a freshly generated request id echoed, plus the
/// failure's wide event (408 timeouts at `info`, parse rejections at
/// `debug`). The connection always closes after this answer.
pub fn wire_error_answer(target: &str, service: &str, error: &WireError) -> Vec<u8> {
    let rid = mcdla_obs::request_id();
    let level = wide_event_level(None, error.status, 0);
    mcdla_obs::log::log(
        level,
        target,
        "wire_error",
        &[
            ("id", rid.as_str().into()),
            ("service", service.into()),
            ("status", error.status.into()),
            ("error", error.message.as_str().into()),
        ],
    );
    let mut out = Vec::new();
    let _ = write_response_with(
        &mut out,
        error.status,
        "application/json",
        &[(REQUEST_ID_HEADER, &rid)],
        &error_body(&error.message),
        false,
    );
    out
}

/// Renders a [`HistoryDump`] as the `GET /metrics/history` body:
/// the shared timestamp column plus a `series` map, aligned
/// index-for-index, oldest sample first.
pub fn history_value(service: &str, dump: &HistoryDump) -> Value {
    Value::Map(vec![
        ("service".into(), Value::Str(service.into())),
        ("interval_ms".into(), Value::U64(dump.interval_ms)),
        ("capacity".into(), Value::U64(dump.capacity as u64)),
        (
            "samples".into(),
            Value::U64(dump.timestamps_ms.len() as u64),
        ),
        (
            "timestamps_ms".into(),
            Value::Seq(dump.timestamps_ms.iter().map(|&t| Value::U64(t)).collect()),
        ),
        (
            "series".into(),
            Value::Map(
                dump.series
                    .iter()
                    .map(|(name, values)| {
                        (
                            name.clone(),
                            Value::Seq(values.iter().map(|&v| Value::F64(v)).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses the `GET /metrics/history` query surface: `series=` a
/// comma-separated exact-name filter, `last=` the newest-N truncation.
pub fn history_query(query: Option<&str>) -> (Option<Vec<&str>>, Option<usize>) {
    let filter = crate::http::query_param(query, "series").map(|s| {
        s.split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .collect::<Vec<_>>()
    });
    let last = crate::http::query_param(query, "last").and_then(|v| v.parse::<usize>().ok());
    (filter, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_obs::{FlightRecorder, SpanRecord};

    fn rec(id: &str, endpoint: &str, total_us: u64) -> TraceRecord {
        TraceRecord {
            id: id.into(),
            endpoint: endpoint.into(),
            status: 200,
            started_unix_ms: 1,
            total_us,
            spans: vec![SpanRecord {
                name: "stage.fabric".into(),
                parent: None,
                start_us: 0,
                dur_us: total_us,
            }],
            seq: 0,
        }
    }

    #[test]
    fn request_id_propagates_or_regenerates() {
        let mut req = Request {
            method: "POST".into(),
            path: "/simulate".into(),
            body: Vec::new(),
            keep_alive: true,
            headers: vec![(REQUEST_ID_HEADER.into(), "abc-123".into())],
        };
        assert_eq!(request_trace_id(&req), "abc-123");
        req.headers[0].1 = "not valid!!".into();
        let fresh = request_trace_id(&req);
        assert_ne!(fresh, "not valid!!");
        assert_eq!(fresh.len(), 16);
    }

    #[test]
    fn debug_requests_sorts_filters_and_limits() {
        let r = FlightRecorder::new(64);
        r.record(rec("a", "simulate", 50));
        r.record(rec("b", "grid", 500));
        r.record(rec("c", "simulate", 5));
        let v = debug_requests_value("mcdla-serve", &r, Some("slow"), None, None);
        let text = serde::json::to_string(&v);
        let b_pos = text.find("\"b\"").unwrap();
        let a_pos = text.find("\"a\"").unwrap();
        let c_pos = text.find("\"c\"").unwrap();
        assert!(b_pos < a_pos && a_pos < c_pos, "slowest first: {text}");
        let v = debug_requests_value("mcdla-serve", &r, None, Some("simulate"), None);
        let text = serde::json::to_string(&v);
        assert!(text.contains("\"matched\":2"), "{text}");
        assert!(!text.contains("\"b\""));
        let v = debug_requests_value("mcdla-serve", &r, None, None, Some("1"));
        let text = serde::json::to_string(&v);
        assert!(text.contains("\"count\":1"), "{text}");
    }

    #[test]
    fn grafting_appends_a_top_level_key() {
        let body = "{\n  \"count\": 1\n}";
        let out = graft_json(
            body,
            "trace",
            trace_value("mcdla-serve", &rec("x", "grid", 9)),
        );
        assert!(out.contains("\"count\""));
        assert!(out.contains("\"trace\""));
        assert!(out.contains("\"stage.fabric\""));
        // Non-object bodies come back unchanged.
        assert_eq!(graft_json("[1,2]", "trace", Value::Null), "[1,2]");
    }

    #[test]
    fn wide_event_levels_follow_the_outcome() {
        // Slow, shed, timed-out, and 5xx requests are operator-facing.
        assert_eq!(wide_event_level(Some(100), 200, 250_000), Level::Info);
        assert_eq!(wide_event_level(None, 429, 10), Level::Info);
        assert_eq!(wide_event_level(None, 408, 10), Level::Info);
        assert_eq!(wide_event_level(None, 500, 10), Level::Info);
        // Ordinary successes and client errors stay at debug volume.
        assert_eq!(wide_event_level(Some(100), 200, 50_000), Level::Debug);
        assert_eq!(wide_event_level(None, 200, 250_000), Level::Debug);
        assert_eq!(wide_event_level(None, 404, 10), Level::Debug);
    }

    #[test]
    fn wire_error_answer_echoes_a_request_id() {
        let error = WireError {
            status: 408,
            message: "request header took too long".into(),
        };
        let bytes = wire_error_answer("serve", "mcdla-serve", &error);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("x-mcdla-request-id:"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.contains("request header took too long"), "{text}");
    }

    #[test]
    fn history_body_zips_series_against_the_timestamps() {
        let dump = HistoryDump {
            timestamps_ms: vec![1000, 2000],
            series: vec![("req_per_s".into(), vec![5.0, 7.0])],
            capacity: 600,
            interval_ms: 1000,
        };
        let text = serde::json::to_string(&history_value("mcdla-serve", &dump));
        assert!(text.contains("\"interval_ms\":1000"), "{text}");
        assert!(text.contains("\"samples\":2"), "{text}");
        assert!(text.contains("\"timestamps_ms\":[1000,2000]"), "{text}");
        assert!(text.contains("\"req_per_s\":[5"), "{text}");
    }

    #[test]
    fn history_query_parses_filter_and_last() {
        let (filter, last) = history_query(Some("series=req_per_s, store.hit_rate,&last=30"));
        assert_eq!(filter, Some(vec!["req_per_s", "store.hit_rate"]));
        assert_eq!(last, Some(30));
        let (filter, last) = history_query(None);
        assert_eq!(filter, None);
        assert_eq!(last, None);
        // A bare or junk `last` is ignored rather than rejected.
        assert_eq!(history_query(Some("last=junk")).1, None);
    }
}
