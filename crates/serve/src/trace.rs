//! Request-trace wire helpers shared by the worker and the gateway:
//! request-id extraction, trace → JSON rendering, the `/debug/requests`
//! listing, the slow-request log, and build-info blocks.
//!
//! The observability contract (`docs/observability.md`):
//!
//! * every response echoes `X-Mcdla-Request-Id` (propagated from the
//!   request when well-formed, freshly generated otherwise);
//! * every request records a trace into the server's
//!   [`FlightRecorder`](mcdla_obs::FlightRecorder), whether or not the
//!   client asked to see it;
//! * `?trace=1` grafts the finished span tree into a JSON response
//!   body under a top-level `"trace"` key;
//! * requests slower than `MCDLA_SLOW_MS` emit one structured JSON
//!   line to stderr.

use std::sync::Arc;

use mcdla_obs::{Histogram, HistogramSnapshot, TraceRecord};
use serde::Value;

use crate::http::Request;

/// The request-id header, lower-cased as the parsed [`Request`] stores
/// header names.
pub const REQUEST_ID_HEADER: &str = "x-mcdla-request-id";

/// The request id for a request: the propagated `X-Mcdla-Request-Id`
/// when present and well-formed (see
/// [`valid_request_id`](mcdla_obs::valid_request_id)), else a fresh
/// id generated at this edge.
pub fn request_trace_id(request: &Request) -> String {
    match request.header(REQUEST_ID_HEADER) {
        Some(id) if mcdla_obs::valid_request_id(id) => id.to_string(),
        _ => mcdla_obs::request_id(),
    }
}

/// A fixed set of labeled latency histograms (one per endpoint): the
/// handles are pre-registered so the request path never touches a map.
#[derive(Debug)]
pub struct LatencyFamily {
    entries: Vec<(&'static str, Arc<Histogram>)>,
}

impl LatencyFamily {
    /// A family with one histogram per label.
    pub fn new(labels: &[&'static str]) -> LatencyFamily {
        LatencyFamily {
            entries: labels
                .iter()
                .map(|&l| (l, Arc::new(Histogram::new())))
                .collect(),
        }
    }

    /// The histogram for a label (`None` for labels not registered).
    pub fn get(&self, label: &str) -> Option<&Arc<Histogram>> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, h)| h)
    }

    /// `(label, snapshot)` pairs in registration order.
    pub fn snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.entries
            .iter()
            .map(|(l, h)| (*l, h.snapshot()))
            .collect()
    }
}

/// Renders a completed trace as the wire JSON: identity, outcome, and
/// the span tree (span `parent` indexes into the same `spans` array).
pub fn trace_value(service: &str, rec: &TraceRecord) -> Value {
    Value::Map(vec![
        ("id".into(), Value::Str(rec.id.clone())),
        ("service".into(), Value::Str(service.into())),
        ("endpoint".into(), Value::Str(rec.endpoint.clone())),
        ("status".into(), Value::U64(u64::from(rec.status))),
        ("started_unix_ms".into(), Value::U64(rec.started_unix_ms)),
        ("total_us".into(), Value::U64(rec.total_us)),
        (
            "spans".into(),
            Value::Seq(
                rec.spans
                    .iter()
                    .map(|s| {
                        Value::Map(vec![
                            ("name".into(), Value::Str(s.name.clone())),
                            (
                                "parent".into(),
                                match s.parent {
                                    Some(p) => Value::U64(p as u64),
                                    None => Value::Null,
                                },
                            ),
                            ("start_us".into(), Value::U64(s.start_us)),
                            ("dur_us".into(), Value::U64(s.dur_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One line of the `/debug/requests` listing: the trace identity and
/// totals without the span tree (fetch `/debug/trace/<id>` for that).
pub fn trace_summary(rec: &TraceRecord) -> Value {
    Value::Map(vec![
        ("id".into(), Value::Str(rec.id.clone())),
        ("endpoint".into(), Value::Str(rec.endpoint.clone())),
        ("status".into(), Value::U64(u64::from(rec.status))),
        ("started_unix_ms".into(), Value::U64(rec.started_unix_ms)),
        ("total_us".into(), Value::U64(rec.total_us)),
        ("spans".into(), Value::U64(rec.spans.len() as u64)),
        ("seq".into(), Value::U64(rec.seq)),
    ])
}

/// Builds the `GET /debug/requests` body from a recorder's contents:
/// newest first by default, slowest first with `sort=slow`, filtered
/// by `endpoint=<label>`, truncated to `limit=<n>` entries (default
/// 100).
pub fn debug_requests_value(
    service: &str,
    recorder: &mcdla_obs::FlightRecorder,
    sort: Option<&str>,
    endpoint: Option<&str>,
    limit: Option<&str>,
) -> Value {
    let mut traces = recorder.recent();
    if let Some(ep) = endpoint {
        traces.retain(|t| t.endpoint == ep);
    }
    if sort == Some("slow") {
        traces.sort_by_key(|t| std::cmp::Reverse(t.total_us));
    }
    let matched = traces.len();
    let limit = limit.and_then(|l| l.parse::<usize>().ok()).unwrap_or(100);
    traces.truncate(limit);
    Value::Map(vec![
        ("service".into(), Value::Str(service.into())),
        ("capacity".into(), Value::U64(recorder.capacity() as u64)),
        ("matched".into(), Value::U64(matched as u64)),
        ("count".into(), Value::U64(traces.len() as u64)),
        (
            "requests".into(),
            Value::Seq(traces.iter().map(|t| trace_summary(t)).collect()),
        ),
    ])
}

/// Grafts `(key, value)` into a JSON-object body, re-serializing
/// pretty. A body that does not parse as an object comes back
/// unchanged (defensive: graft targets are bodies this process just
/// serialized).
pub fn graft_json(body: &str, key: &str, value: Value) -> String {
    match serde::json::parse(body) {
        Ok(Value::Map(mut entries)) => {
            entries.push((key.into(), value));
            serde::json::to_string_pretty(&Value::Map(entries))
        }
        _ => body.to_string(),
    }
}

/// The build-info block for `/healthz` and `/stats`: crate version and
/// the compile-time git-ish build id.
pub fn build_value() -> Value {
    Value::Map(vec![
        (
            "version".into(),
            Value::Str(mcdla_obs::build_version().into()),
        ),
        ("id".into(), Value::Str(mcdla_obs::build_id().into())),
    ])
}

/// Reads `MCDLA_SLOW_MS`: a positive integer enables the slow-request
/// log at that threshold; unset, `0`, or unparsable disables it.
pub fn slow_ms_from_env() -> Option<u64> {
    std::env::var("MCDLA_SLOW_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
}

/// The structured slow-request log line (one compact JSON object):
/// request id, endpoint, status, total, and the per-span breakdown.
pub fn slow_log_line(service: &str, rec: &TraceRecord) -> String {
    serde::json::to_string(&Value::Map(vec![(
        "slow_request".into(),
        Value::Map(vec![
            ("service".into(), Value::Str(service.into())),
            ("id".into(), Value::Str(rec.id.clone())),
            ("endpoint".into(), Value::Str(rec.endpoint.clone())),
            ("status".into(), Value::U64(u64::from(rec.status))),
            ("total_us".into(), Value::U64(rec.total_us)),
            (
                "spans".into(),
                Value::Seq(
                    rec.spans
                        .iter()
                        .map(|s| {
                            Value::Map(vec![
                                ("name".into(), Value::Str(s.name.clone())),
                                ("dur_us".into(), Value::U64(s.dur_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    )]))
}

/// Emits the slow-request line when the trace crossed the threshold.
pub fn log_if_slow(service: &str, slow_ms: Option<u64>, rec: &TraceRecord) {
    if let Some(ms) = slow_ms {
        if rec.total_us >= ms.saturating_mul(1000) {
            eprintln!("{}", slow_log_line(service, rec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_obs::{FlightRecorder, SpanRecord};

    fn rec(id: &str, endpoint: &str, total_us: u64) -> TraceRecord {
        TraceRecord {
            id: id.into(),
            endpoint: endpoint.into(),
            status: 200,
            started_unix_ms: 1,
            total_us,
            spans: vec![SpanRecord {
                name: "stage.fabric".into(),
                parent: None,
                start_us: 0,
                dur_us: total_us,
            }],
            seq: 0,
        }
    }

    #[test]
    fn request_id_propagates_or_regenerates() {
        let mut req = Request {
            method: "POST".into(),
            path: "/simulate".into(),
            body: Vec::new(),
            keep_alive: true,
            headers: vec![(REQUEST_ID_HEADER.into(), "abc-123".into())],
        };
        assert_eq!(request_trace_id(&req), "abc-123");
        req.headers[0].1 = "not valid!!".into();
        let fresh = request_trace_id(&req);
        assert_ne!(fresh, "not valid!!");
        assert_eq!(fresh.len(), 16);
    }

    #[test]
    fn debug_requests_sorts_filters_and_limits() {
        let r = FlightRecorder::new(64);
        r.record(rec("a", "simulate", 50));
        r.record(rec("b", "grid", 500));
        r.record(rec("c", "simulate", 5));
        let v = debug_requests_value("mcdla-serve", &r, Some("slow"), None, None);
        let text = serde::json::to_string(&v);
        let b_pos = text.find("\"b\"").unwrap();
        let a_pos = text.find("\"a\"").unwrap();
        let c_pos = text.find("\"c\"").unwrap();
        assert!(b_pos < a_pos && a_pos < c_pos, "slowest first: {text}");
        let v = debug_requests_value("mcdla-serve", &r, None, Some("simulate"), None);
        let text = serde::json::to_string(&v);
        assert!(text.contains("\"matched\":2"), "{text}");
        assert!(!text.contains("\"b\""));
        let v = debug_requests_value("mcdla-serve", &r, None, None, Some("1"));
        let text = serde::json::to_string(&v);
        assert!(text.contains("\"count\":1"), "{text}");
    }

    #[test]
    fn grafting_appends_a_top_level_key() {
        let body = "{\n  \"count\": 1\n}";
        let out = graft_json(
            body,
            "trace",
            trace_value("mcdla-serve", &rec("x", "grid", 9)),
        );
        assert!(out.contains("\"count\""));
        assert!(out.contains("\"trace\""));
        assert!(out.contains("\"stage.fabric\""));
        // Non-object bodies come back unchanged.
        assert_eq!(graft_json("[1,2]", "trace", Value::Null), "[1,2]");
    }

    #[test]
    fn slow_line_is_one_structured_json_object() {
        let line = slow_log_line("mcdla-serve", &rec("slow-1", "simulate", 250_000));
        assert!(!line.contains('\n'));
        let parsed = serde::json::parse(&line).unwrap();
        let Value::Map(entries) = parsed else {
            panic!("not an object")
        };
        assert_eq!(entries[0].0, "slow_request");
        assert!(line.contains("\"slow-1\""));
        assert!(line.contains("\"stage.fabric\""));
    }
}
