//! The `mcdla-serve` server: an epoll event loop owning every
//! connection's I/O (see [`crate::accept`]), with simulation work on a
//! bounded blocking worker pool, routing to the shared scenario store.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mcdla_accel::DeviceGeneration;
use mcdla_core::{
    FabricTopology, Overrides, Provenance, ResultStore, Runner, Scenario, ScenarioGrid, StageCache,
    SystemDesign,
};
use mcdla_dnn::Benchmark;
use mcdla_obs::{
    rss_bytes, unix_ms, FlightRecorder, HistogramSnapshot, History, Sampler, Span, TraceRecord,
    TraceScope,
};
use mcdla_parallel::ParallelStrategy;
use serde::{Deserialize, Serialize, Value};

use crate::accept::{spawn_event_loop, FastAnswer, LoopConfig, LoopHandle, LoopStats, Service};
use crate::http::{
    error_body, finish_chunked, query_flag, query_param, split_target, write_chunk,
    write_chunked_head_with, write_response_with, Request, WireError,
};
use crate::metrics::MetricsBuilder;
use crate::trace::{self, LatencyFamily, REQUEST_ID_HEADER};

/// Largest grid one buffered `POST /grid` request may expand to.
pub const MAX_GRID_CELLS: usize = 10_000;

/// Largest grid one streamed `POST /grid?stream=1` request may expand
/// to. Streamed responses never buffer the grid — each cell leaves the
/// process as soon as a worker finishes it — so the bound is an order of
/// magnitude looser than [`MAX_GRID_CELLS`] and exists only to stop one
/// request monopolizing the simulation pool forever.
pub const MAX_STREAM_CELLS: usize = 100_000;

/// Idle keep-alive connections are dropped after this long.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Serialized `/simulate` hit responses kept around (bodies are
/// deterministic per scenario, so re-serializing a resident report is
/// pure waste on the hot path).
const RESPONSE_CACHE_CAP: usize = 1024;

/// Everything `mcdla serve` configures.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size: how many heavy (simulating/streaming)
    /// requests run concurrently. Connection I/O is not bounded by
    /// this — the event loop multiplexes every connection.
    pub threads: usize,
    /// Result-store capacity (`None` = unbounded).
    pub cache_cap: Option<usize>,
    /// Snapshot path: loaded (if present) at startup, rewritten after
    /// every request that simulated at least one new cell.
    pub snapshot: Option<PathBuf>,
    /// Event-loop threads (one epoll instance each).
    pub loops: usize,
    /// Admission-queue bound: heavy requests waiting beyond the worker
    /// pool; the next one is answered 429 + `Retry-After`.
    pub queue_depth: usize,
    /// Idle keep-alive connections close silently after this long.
    pub idle_timeout: Duration,
    /// Connections stalled mid-request answer 408 after this long.
    pub request_timeout: Duration,
    /// Telemetry-sampler cadence override: `None` reads
    /// `MCDLA_SAMPLE_MS` (default 1 s), `Some(0)` disables sampling,
    /// `Some(n)` ticks every `n` ms. The override exists so benches can
    /// A/B sampler-on/off in-process without racing on env vars.
    pub sample_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            threads: 4,
            cache_cap: None,
            snapshot: None,
            loops: 1,
            queue_depth: 128,
            idle_timeout: READ_TIMEOUT,
            request_timeout: READ_TIMEOUT,
            sample_ms: None,
        }
    }
}

/// Per-endpoint request counters, reported by `GET /stats` and
/// `GET /metrics`.
#[derive(Debug, Default)]
struct EndpointCounters {
    healthz: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    simulate: AtomicU64,
    grid: AtomicU64,
    debug: AtomicU64,
    errors: AtomicU64,
}

impl EndpointCounters {
    /// `(endpoint name, count)` snapshot, in stable order.
    fn snapshot(&self) -> [(&'static str, u64); 7] {
        [
            ("healthz", self.healthz.load(Ordering::Relaxed)),
            ("stats", self.stats.load(Ordering::Relaxed)),
            ("metrics", self.metrics.load(Ordering::Relaxed)),
            ("simulate", self.simulate.load(Ordering::Relaxed)),
            ("grid", self.grid.load(Ordering::Relaxed)),
            ("debug", self.debug.load(Ordering::Relaxed)),
            ("errors", self.errors.load(Ordering::Relaxed)),
        ]
    }

    fn to_value(&self) -> Value {
        Value::Map(
            self.snapshot()
                .into_iter()
                .map(|(name, count)| (name.into(), Value::U64(count)))
                .collect(),
        )
    }
}

#[derive(Debug)]
struct ServerState {
    store: Arc<ResultStore>,
    runner: Runner,
    snapshot: Option<PathBuf>,
    /// Serializes snapshot writes from concurrent handlers.
    snapshot_write: Mutex<()>,
    shutdown: AtomicBool,
    started: Instant,
    requests: EndpointCounters,
    /// Event-loop counters (open/accepted/shed/timeouts).
    loop_stats: Arc<LoopStats>,
    /// Serialized response bodies for `/simulate` cache hits, keyed by
    /// scenario. Only consulted *after* `store.get` confirms residency
    /// (so hit accounting is untouched), and reports are deterministic
    /// per scenario, so a cached body is byte-identical to a fresh one.
    sim_responses: StageCache<Scenario, Arc<str>>,
    /// The last `MCDLA_TRACE_CAP` completed request traces.
    recorder: FlightRecorder,
    /// Request-latency histograms, one per endpoint label.
    latency: LatencyFamily,
    /// Slow-request log threshold (`MCDLA_SLOW_MS`; `None` = off).
    slow_ms: Option<u64>,
    /// Retained time-series telemetry, fed by the background sampler
    /// and served by `GET /metrics/history`.
    history: Arc<History>,
}

impl ServerState {
    /// Rewrites the snapshot file (atomic temp+rename in the store), so
    /// a `kill -9` at any moment leaves a loadable file behind.
    fn persist_snapshot(&self) {
        let Some(path) = &self.snapshot else { return };
        let _guard = self.snapshot_write.lock().expect("snapshot write lock");
        if let Err(e) = self.store.save(path) {
            mcdla_obs::log::error(
                "serve",
                "snapshot_write_failed",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    }
}

/// A bound-but-not-yet-serving server. [`Server::bind`] resolves the
/// address, builds (and optionally warm-loads) the store; [`Server::run`]
/// or [`Server::spawn`] starts the event loop and worker pool.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    loop_config: LoopConfig,
    state: Arc<ServerState>,
    /// Resolved sampler cadence (`None` = sampling off).
    sample_ms: Option<u64>,
}

/// Handle to a running server: its resolved address, a shared view of
/// the store, and a clean shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    loops: LoopHandle,
    /// The background telemetry sampler (absent when sampling is off).
    sampler: Option<Sampler>,
}

impl Server {
    /// Binds the listener and prepares the store (loading the snapshot
    /// when the configured file exists).
    pub fn bind(config: &ServeConfig) -> Result<Server, String> {
        if config.threads == 0 {
            return Err("thread count must be >= 1 (got `0`)".into());
        }
        let store = Arc::new(match config.cache_cap {
            Some(0) => return Err("cache capacity must be >= 1 (got `0`)".into()),
            Some(cap) => ResultStore::bounded(cap),
            None => ResultStore::unbounded(),
        });
        if let Some(path) = &config.snapshot {
            if path.exists() {
                let loaded = store.load(path)?;
                let resident = store.len();
                mcdla_obs::log::info(
                    "serve",
                    "snapshot_warmed",
                    &[
                        ("cells", loaded.into()),
                        ("path", path.display().to_string().into()),
                    ],
                );
                if resident < loaded {
                    // The file outgrew this store's capacity (e.g. it was
                    // written unbounded and we restarted with --cache-cap):
                    // compact it now so evicted cells are dropped once
                    // instead of being re-parsed on every restart.
                    match store.save(path) {
                        Ok(()) => mcdla_obs::log::info(
                            "serve",
                            "snapshot_compacted",
                            &[
                                ("cells", resident.into()),
                                ("dropped", (loaded - resident).into()),
                            ],
                        ),
                        Err(e) => mcdla_obs::log::error(
                            "serve",
                            "snapshot_compact_failed",
                            &[
                                ("path", path.display().to_string().into()),
                                ("error", e.to_string().into()),
                            ],
                        ),
                    }
                }
            }
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        // Simulation threads follow the batch runner's default
        // (MCDLA_THREADS or machine parallelism) — the event loop's
        // worker pool is a separate resource.
        let sim_threads = Runner::new().threads();
        // Span recording is process-global and off by default (batch
        // sweeps skip the instrumentation); a serving process turns it
        // on for request traces and stage latency histograms.
        mcdla_obs::set_enabled(true);
        let sample_ms = match config.sample_ms {
            Some(0) => None,
            Some(n) => Some(n),
            None => mcdla_obs::sample_ms_from_env(),
        };
        let history = Arc::new(History::new(
            worker_series_names(),
            mcdla_obs::history_cap_from_env(),
            sample_ms.unwrap_or(0),
        ));
        Ok(Server {
            listener,
            sample_ms,
            loop_config: LoopConfig {
                loops: config.loops.max(1),
                workers: config.threads,
                queue_depth: config.queue_depth.max(1),
                idle_timeout: config.idle_timeout,
                request_timeout: config.request_timeout,
            },
            state: Arc::new(ServerState {
                runner: Runner::with_store(sim_threads, store.clone()),
                store,
                snapshot: config.snapshot.clone(),
                snapshot_write: Mutex::new(()),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                requests: EndpointCounters::default(),
                loop_stats: Arc::new(LoopStats::default()),
                sim_responses: StageCache::bounded(RESPONSE_CACHE_CAP),
                recorder: FlightRecorder::from_env(),
                latency: LatencyFamily::new(ENDPOINT_LABELS),
                slow_ms: trace::slow_ms_from_env(),
                history,
            }),
        })
    }

    /// The resolved listen address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The store this server serves from (shared with any batch work).
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.state.store
    }

    /// Starts the event loop and worker pool in background threads and
    /// returns a handle; the caller keeps running (tests, `mcdla query`
    /// probes, embedded servers).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let service = Arc::new(WorkerService {
            state: self.state.clone(),
        });
        let loops = spawn_event_loop(
            self.listener,
            service,
            &self.loop_config,
            self.state.loop_stats.clone(),
        )?;
        let sampler = self.sample_ms.map(|interval_ms| {
            let state = self.state.clone();
            let mut previous = WorkerTick::capture(&state);
            Sampler::spawn(interval_ms, move || {
                let current = WorkerTick::capture(&state);
                state
                    .history
                    .record(unix_ms(), &current.series_values(&previous));
                previous = current;
            })
        });
        Ok(ServerHandle {
            addr,
            state: self.state,
            loops,
            sampler,
        })
    }

    /// Runs the server on background threads and parks the calling
    /// thread until they exit — the `mcdla serve` entry point (it runs
    /// until the process is killed).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        handle.loops.join();
        Ok(())
    }
}

impl ServerHandle {
    /// The resolved listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The running server's store.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.state.store
    }

    /// Stops the event loop and worker pool, flushes a final snapshot,
    /// and joins every thread. In-flight responses finish first; idle
    /// keep-alive connections close immediately (the loop owns them —
    /// no thread is parked in a blocking read anywhere).
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(sampler) = self.sampler {
            sampler.stop();
        }
        self.loops.shutdown();
        self.state.persist_snapshot();
    }
}

/// The stage tables retained telemetry tracks, in series order
/// (the fixed display order of `mcdla_core::stages::stage_stats`).
const STAGE_LABELS: &[&str] = &[
    "fabric",
    "network",
    "layer_timing",
    "plan",
    "schedule",
    "collective",
    "sync",
];

/// The worker's retained series, in record order. This list and
/// [`WorkerTick::series_values`] must enumerate the same series in the
/// same order — [`History::record`] panics on any arity drift.
fn worker_series_names() -> Vec<String> {
    let mut names = vec!["req_per_s".to_string(), "err_per_s".to_string()];
    for ep in ENDPOINT_LABELS {
        names.push(format!("{ep}.req_per_s"));
        names.push(format!("{ep}.p50_ms"));
        names.push(format!("{ep}.p99_ms"));
    }
    names.extend(
        [
            "store.hit_rate",
            "store.hits_per_s",
            "store.misses_per_s",
            "store.evictions_per_s",
            "store.entries",
        ]
        .map(String::from),
    );
    for stage in STAGE_LABELS {
        names.push(format!("stage.{stage}.hit_rate"));
    }
    names.extend(
        [
            "conns.open",
            "conns.shed_per_s",
            "conns.timeouts_per_s",
            "rss_bytes",
            "uptime_seconds",
        ]
        .map(String::from),
    );
    names
}

/// One sampler tick's snapshot of every monotone counter the worker
/// series derive from; consecutive ticks difference into windowed
/// rates and quantiles.
struct WorkerTick {
    at: Instant,
    errors: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: u64,
    stage_hits: Vec<u64>,
    stage_misses: Vec<u64>,
    shed: u64,
    timeouts: u64,
    open: u64,
    uptime_s: f64,
    latency: Vec<HistogramSnapshot>,
}

impl WorkerTick {
    fn capture(state: &ServerState) -> WorkerTick {
        let stats = state.store.stats();
        let stage = |name: &str| stats.stages.iter().find(|s| s.stage == name);
        WorkerTick {
            at: Instant::now(),
            errors: state.requests.errors.load(Ordering::Relaxed),
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            entries: stats.entries,
            stage_hits: STAGE_LABELS
                .iter()
                .map(|l| stage(l).map_or(0, |s| s.hits))
                .collect(),
            stage_misses: STAGE_LABELS
                .iter()
                .map(|l| stage(l).map_or(0, |s| s.misses))
                .collect(),
            shed: state.loop_stats.shed(),
            timeouts: state.loop_stats.request_timeouts(),
            open: state.loop_stats.open(),
            uptime_s: state.started.elapsed().as_secs_f64(),
            latency: state
                .latency
                .snapshots()
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
        }
    }

    /// The values for one history sample, in [`worker_series_names`]
    /// order, windowed against the previous tick.
    fn series_values(&self, prev: &WorkerTick) -> Vec<f64> {
        let dt = self.at.duration_since(prev.at).as_secs_f64().max(1e-3);
        let rate = |now: u64, then: u64| now.saturating_sub(then) as f64 / dt;
        let ratio = |h: f64, m: f64| if h + m > 0.0 { h / (h + m) } else { 0.0 };
        let windows: Vec<HistogramSnapshot> = self
            .latency
            .iter()
            .zip(&prev.latency)
            .map(|(now, then)| now.delta(then))
            .collect();
        let total: u64 = windows.iter().map(HistogramSnapshot::count).sum();
        let mut values = vec![total as f64 / dt, rate(self.errors, prev.errors)];
        for w in &windows {
            values.push(w.count() as f64 / dt);
            values.push(w.quantile(0.5) * 1e3);
            values.push(w.quantile(0.99) * 1e3);
        }
        let hits_per_s = rate(self.hits, prev.hits);
        let misses_per_s = rate(self.misses, prev.misses);
        values.extend([
            ratio(hits_per_s, misses_per_s),
            hits_per_s,
            misses_per_s,
            rate(self.evictions, prev.evictions),
            self.entries as f64,
        ]);
        for i in 0..STAGE_LABELS.len() {
            values.push(ratio(
                rate(self.stage_hits[i], prev.stage_hits[i]),
                rate(self.stage_misses[i], prev.stage_misses[i]),
            ));
        }
        values.extend([
            self.open as f64,
            rate(self.shed, prev.shed),
            rate(self.timeouts, prev.timeouts),
            rss_bytes().unwrap_or(0) as f64,
            self.uptime_s,
        ]);
        values
    }
}

/// The worker's [`Service`]: cheap endpoints and cache hits answer on
/// the loop thread, simulation and streaming detach to the pool.
struct WorkerService {
    state: Arc<ServerState>,
}

impl Service for WorkerService {
    fn fast(&self, request: &Request) -> Option<FastAnswer> {
        respond_fast(&self.state, request)
    }

    fn handle(&self, request: &Request, stream: &mut TcpStream, queued: Duration) -> bool {
        respond_heavy(&self.state, request, stream, queued)
    }

    fn shed(&self, request: &Request) -> FastAnswer {
        shed_answer(&self.state, request, "mcdla-serve")
    }

    fn wire_error(&self, error: &WireError) -> Vec<u8> {
        self.state.requests.errors.fetch_add(1, Ordering::Relaxed);
        trace::wire_error_answer("serve", "mcdla-serve", error)
    }
}

/// Builds the 429 + `Retry-After` load-shedding answer and records it
/// like any other request (error counter, latency histogram, trace).
fn shed_answer(state: &ServerState, request: &Request, service: &str) -> FastAnswer {
    state.requests.errors.fetch_add(1, Ordering::Relaxed);
    let (path, _) = split_target(&request.path);
    let endpoint = endpoint_label(path);
    let rid = trace::request_trace_id(request);
    let scope = TraceScope::begin();
    let record = scope.finish(rid.clone(), endpoint, 429);
    if let Some(hist) = state.latency.get(endpoint) {
        hist.observe(record.total_us as f64 / 1e6);
    }
    trace::wide_event("serve", service, state.slow_ms, &record, None, 0, 0, &[]);
    state.recorder.record(record);
    let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
    let mut out = Vec::new();
    let _ = write_response_with(
        &mut out,
        429,
        "application/json",
        &[("retry-after", "1"), (REQUEST_ID_HEADER, &rid)],
        &error_body("request queue is full; retry shortly"),
        keep_alive,
    );
    FastAnswer {
        bytes: out,
        keep_alive,
    }
}

/// Answers a request inline on the loop thread when nothing about it
/// needs the worker pool: every endpoint except `POST /grid` (always
/// heavy) and `POST /simulate` misses (the simulation itself).
fn respond_fast(state: &Arc<ServerState>, request: &Request) -> Option<FastAnswer> {
    let (path, query) = split_target(&request.path);
    let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
    let traced = query_flag(query, "trace");
    let scope = TraceScope::begin();
    let outcome = if request.method == "POST" && path == "/simulate" {
        // Inline only the cases that never simulate: malformed bodies
        // and resident cache hits. A miss goes to the pool un-counted —
        // the worker's `route` call counts it there.
        let scenario = match parse_body::<Scenario>(&request.body, "scenario") {
            Ok(s) => match s.validate() {
                Ok(()) => Some(s),
                Err(msg) => {
                    state.requests.simulate.fetch_add(1, Ordering::Relaxed);
                    return Some(finish_fast(
                        state,
                        request,
                        scope,
                        Outcome::error(400, &msg),
                        keep_alive,
                        traced,
                    ));
                }
            },
            Err(outcome) => {
                state.requests.simulate.fetch_add(1, Ordering::Relaxed);
                return Some(finish_fast(
                    state, request, scope, outcome, keep_alive, traced,
                ));
            }
        };
        let scenario = scenario?;
        // The span matches the worker path's `get_or_compute` so traced
        // hits and misses reconcile against the same span name.
        let report = {
            let _s = Span::enter("store.get_or_compute");
            state.store.get(&scenario)
        }?;
        state.requests.simulate.fetch_add(1, Ordering::Relaxed);
        let body = if traced {
            // Traced responses graft a per-request span tree: never
            // from the response cache.
            serde::json::to_string_pretty(&cell_value(&scenario, &report, true))
        } else {
            match state.sim_responses.get(&scenario) {
                Some(cached) => cached.to_string(),
                None => {
                    let body = serde::json::to_string_pretty(&cell_value(&scenario, &report, true));
                    state
                        .sim_responses
                        .insert(scenario, Arc::from(body.as_str()));
                    body
                }
            }
        };
        Outcome::ok(body)
    } else if path == "/grid" && request.method == "POST" {
        return None; // buffered and streamed grids always take the pool
    } else {
        // Every remaining endpoint is cheap: route it right here
        // (panics still must not take the loop thread down).
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(request, state)))
            .unwrap_or_else(|_| Outcome::error(500, "internal error handling the request"))
    };
    Some(finish_fast(
        state, request, scope, outcome, keep_alive, traced,
    ))
}

/// The shared response tail for loop-thread answers: error counting,
/// trace finish, optional `?trace=1` graft, serialization.
fn finish_fast(
    state: &Arc<ServerState>,
    request: &Request,
    scope: TraceScope,
    outcome: Outcome,
    keep_alive: bool,
    traced: bool,
) -> FastAnswer {
    let (path, _) = split_target(&request.path);
    let endpoint = endpoint_label(path);
    let rid = trace::request_trace_id(request);
    if outcome.status >= 400 {
        state.requests.errors.fetch_add(1, Ordering::Relaxed);
    }
    let cached = cache_disposition(endpoint, outcome.status, outcome.computed_cells);
    let record = finish_trace(state, scope, &rid, endpoint, outcome.status);
    let body = if traced && outcome.status < 400 && outcome.content_type == "application/json" {
        trace::graft_json(
            &outcome.body,
            "trace",
            trace::trace_value("mcdla-serve", &record),
        )
    } else {
        outcome.body
    };
    trace::wide_event(
        "serve",
        "mcdla-serve",
        state.slow_ms,
        &record,
        cached,
        0,
        body.len() as u64,
        &[],
    );
    let mut out = Vec::new();
    let _ = write_response_with(
        &mut out,
        outcome.status,
        outcome.content_type,
        &[(REQUEST_ID_HEADER, &rid)],
        &body,
        keep_alive,
    );
    FastAnswer {
        bytes: out,
        keep_alive,
    }
}

/// Handles one heavy request on a pool worker with a blocking stream:
/// `POST /grid` (buffered and streamed) and `/simulate` misses.
/// Returns whether the connection should stay open.
fn respond_heavy(
    state: &Arc<ServerState>,
    request: &Request,
    writer: &mut TcpStream,
    queued: Duration,
) -> bool {
    let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
    let (path, query) = split_target(&request.path);
    let endpoint = endpoint_label(path);
    let rid = trace::request_trace_id(request);
    let traced = query_flag(query, "trace");
    let queue_us = queued.as_micros().min(u128::from(u64::MAX)) as u64;
    let scope = TraceScope::begin();
    if request.method == "POST" && path == "/grid" && query_flag(query, "stream") {
        state.requests.grid.fetch_add(1, Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stream_grid(&request.body, state, writer, keep_alive, &rid)
        }));
        let status = match &outcome {
            Ok(StreamOutcome::Rejected(o)) => o.status,
            Ok(StreamOutcome::Streamed { .. }) => 200,
            Err(_) => 500,
        };
        let record = finish_trace(state, scope, &rid, endpoint, status);
        return match outcome {
            Ok(StreamOutcome::Rejected(outcome)) => {
                state.requests.errors.fetch_add(1, Ordering::Relaxed);
                trace::wide_event(
                    "serve",
                    "mcdla-serve",
                    state.slow_ms,
                    &record,
                    None,
                    queue_us,
                    outcome.body.len() as u64,
                    &[("stream", true.into())],
                );
                write_response_with(
                    writer,
                    outcome.status,
                    outcome.content_type,
                    &[(REQUEST_ID_HEADER, &rid)],
                    &outcome.body,
                    keep_alive,
                )
                .is_ok()
                    && keep_alive
            }
            Ok(StreamOutcome::Streamed {
                computed_cells,
                bytes,
                clean,
            }) => {
                trace::wide_event(
                    "serve",
                    "mcdla-serve",
                    state.slow_ms,
                    &record,
                    Some(computed_cells == 0),
                    queue_us,
                    bytes,
                    &[("stream", true.into()), ("clean", clean.into())],
                );
                if computed_cells > 0 {
                    state.persist_snapshot();
                }
                let _ = writer.flush();
                clean && keep_alive
            }
            // A panic after the 200 head cannot be answered; closing
            // without the terminal chunk is how the client learns the
            // stream died (the worker thread itself survives).
            Err(_) => {
                state.requests.errors.fetch_add(1, Ordering::Relaxed);
                trace::wide_event(
                    "serve",
                    "mcdla-serve",
                    state.slow_ms,
                    &record,
                    None,
                    queue_us,
                    0,
                    &[("stream", true.into()), ("panic", true.into())],
                );
                false
            }
        };
    }
    // A panicking handler must not take its worker thread (and the
    // pool slot) with it: answer 500 and carry on.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(request, state)))
        .unwrap_or_else(|_| Outcome::error(500, "internal error handling the request"));
    if outcome.status >= 400 {
        state.requests.errors.fetch_add(1, Ordering::Relaxed);
    }
    let cached = cache_disposition(endpoint, outcome.status, outcome.computed_cells);
    let record = finish_trace(state, scope, &rid, endpoint, outcome.status);
    let body = if traced && outcome.status < 400 && outcome.content_type == "application/json" {
        trace::graft_json(
            &outcome.body,
            "trace",
            trace::trace_value("mcdla-serve", &record),
        )
    } else {
        outcome.body
    };
    trace::wide_event(
        "serve",
        "mcdla-serve",
        state.slow_ms,
        &record,
        cached,
        queue_us,
        body.len() as u64,
        &[],
    );
    let wrote = write_response_with(
        writer,
        outcome.status,
        outcome.content_type,
        &[(REQUEST_ID_HEADER, &rid)],
        &body,
        keep_alive,
    )
    .is_ok();
    if outcome.computed_cells > 0 {
        state.persist_snapshot();
    }
    wrote && keep_alive
}

/// The endpoint labels request-latency histograms are registered for.
const ENDPOINT_LABELS: &[&str] = &[
    "healthz", "stats", "metrics", "simulate", "grid", "debug", "other",
];

/// The histogram/trace label for a request path.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/stats" => "stats",
        "/metrics" | "/metrics/history" => "metrics",
        "/simulate" => "simulate",
        "/grid" => "grid",
        p if p.starts_with("/debug/") => "debug",
        _ => "other",
    }
}

/// Closes a request's trace scope and runs the per-request
/// observability tail: endpoint latency histogram and admission into
/// the flight recorder. Returns the shared record (for `?trace=1`
/// grafting and the wide event the call site emits — only the call
/// site knows the cache disposition, queue time, and byte count).
fn finish_trace(
    state: &ServerState,
    scope: TraceScope,
    rid: &str,
    endpoint: &'static str,
    status: u16,
) -> Arc<TraceRecord> {
    let record = scope.finish(rid.to_string(), endpoint, status);
    if let Some(hist) = state.latency.get(endpoint) {
        hist.observe(record.total_us as f64 / 1e6);
    }
    state.recorder.record(record)
}

/// The cache disposition a wide event reports. Only the simulation
/// endpoints answer from the store; a successful answer that computed
/// zero cells was served entirely from cache.
fn cache_disposition(endpoint: &str, status: u16, computed_cells: usize) -> Option<bool> {
    (matches!(endpoint, "simulate" | "grid") && status < 400).then_some(computed_cells == 0)
}

struct Outcome {
    status: u16,
    body: String,
    /// Response content type (JSON everywhere except `/metrics`).
    content_type: &'static str,
    /// Cells this request actually simulated (drives snapshot rewrites).
    computed_cells: usize,
}

impl Outcome {
    fn ok(body: String) -> Self {
        Outcome {
            status: 200,
            body,
            content_type: "application/json",
            computed_cells: 0,
        }
    }

    fn text(body: String, content_type: &'static str) -> Self {
        Outcome {
            status: 200,
            body,
            content_type,
            computed_cells: 0,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Outcome {
            status,
            body: error_body(message),
            content_type: "application/json",
            computed_cells: 0,
        }
    }
}

fn route(request: &Request, state: &Arc<ServerState>) -> Outcome {
    let (path, query) = split_target(&request.path);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            state.requests.healthz.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(serde::json::to_string(&Value::Map(vec![
                ("status".into(), Value::Str("ok".into())),
                ("service".into(), Value::Str("mcdla-serve".into())),
                (
                    "uptime_seconds".into(),
                    Value::F64(state.started.elapsed().as_secs_f64()),
                ),
                ("build".into(), trace::build_value()),
            ])))
        }
        ("GET", "/stats") => {
            state.requests.stats.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(serde::json::to_string_pretty(&stats_value(state)))
        }
        ("GET", "/metrics") => {
            state.requests.metrics.fetch_add(1, Ordering::Relaxed);
            Outcome::text(metrics_text(state), crate::metrics::CONTENT_TYPE)
        }
        ("GET", "/metrics/history") => {
            state.requests.metrics.fetch_add(1, Ordering::Relaxed);
            let (filter, last) = trace::history_query(query);
            let dump = state.history.dump(filter.as_deref(), last);
            Outcome::ok(serde::json::to_string_pretty(&trace::history_value(
                "mcdla-serve",
                &dump,
            )))
        }
        ("POST", "/simulate") => {
            state.requests.simulate.fetch_add(1, Ordering::Relaxed);
            simulate_endpoint(&request.body, state)
        }
        ("POST", "/grid") => {
            state.requests.grid.fetch_add(1, Ordering::Relaxed);
            grid_endpoint(&request.body, state)
        }
        ("GET", "/debug/requests") => {
            state.requests.debug.fetch_add(1, Ordering::Relaxed);
            Outcome::ok(serde::json::to_string_pretty(&trace::debug_requests_value(
                "mcdla-serve",
                &state.recorder,
                query_param(query, "sort"),
                query_param(query, "endpoint"),
                query_param(query, "limit"),
            )))
        }
        ("GET", p) if p.starts_with("/debug/trace/") => {
            state.requests.debug.fetch_add(1, Ordering::Relaxed);
            let id = p.trim_start_matches("/debug/trace/");
            match state.recorder.lookup(id) {
                Some(rec) => Outcome::ok(serde::json::to_string_pretty(&trace::trace_value(
                    "mcdla-serve",
                    &rec,
                ))),
                None => Outcome::error(404, &format!("no trace recorded for request id `{id}`")),
            }
        }
        (_, "/healthz" | "/stats" | "/metrics" | "/metrics/history") => {
            Outcome::error(405, "use GET on this endpoint")
        }
        (_, p) if p == "/debug/requests" || p.starts_with("/debug/trace/") => {
            Outcome::error(405, "use GET on this endpoint")
        }
        (_, "/simulate" | "/grid") => {
            Outcome::error(405, "use POST with a JSON body on this endpoint")
        }
        (_, path) => Outcome::error(404, &format!("no such endpoint `{path}`")),
    }
}

fn stats_value(state: &ServerState) -> Value {
    Value::Map(vec![
        ("service".into(), Value::Str("mcdla-serve".into())),
        (
            "uptime_seconds".into(),
            Value::F64(state.started.elapsed().as_secs_f64()),
        ),
        ("build".into(), trace::build_value()),
        (
            "simulation_threads".into(),
            Value::U64(state.runner.threads() as u64),
        ),
        ("store".into(), state.store.stats().to_value()),
        ("requests".into(), state.requests.to_value()),
        (
            "connections".into(),
            Value::Map(vec![
                ("open".into(), Value::U64(state.loop_stats.open())),
                ("accepted".into(), Value::U64(state.loop_stats.accepted())),
                ("shed".into(), Value::U64(state.loop_stats.shed())),
                (
                    "request_timeouts".into(),
                    Value::U64(state.loop_stats.request_timeouts()),
                ),
                (
                    "idle_closed".into(),
                    Value::U64(state.loop_stats.idle_closed()),
                ),
            ]),
        ),
        (
            "recorder".into(),
            Value::Map(vec![
                (
                    "capacity".into(),
                    Value::U64(state.recorder.capacity() as u64),
                ),
                ("recorded".into(), Value::U64(state.recorder.len() as u64)),
            ]),
        ),
    ])
}

/// Renders the worker's `GET /metrics` Prometheus exposition: request
/// counters per endpoint plus the result-store counters and gauges —
/// the same numbers `GET /stats` reports as JSON, in the format
/// standard scrapers speak.
fn metrics_text(state: &ServerState) -> String {
    let stats = state.store.stats();
    let mut b = MetricsBuilder::new();
    b.scalar(
        "mcdla_up",
        "Whether this mcdla-serve worker is serving.",
        "gauge",
        1.0,
    );
    b.scalar(
        "mcdla_uptime_seconds",
        "Seconds since this worker started.",
        "gauge",
        state.started.elapsed().as_secs_f64(),
    );
    b.family(
        "mcdla_build_info",
        "Build metadata as labels (constant 1).",
        "gauge",
    );
    b.sample(
        "mcdla_build_info",
        &[
            ("version", mcdla_obs::build_version()),
            ("build", mcdla_obs::build_id()),
        ],
        1.0,
    );
    b.family(
        "mcdla_requests_total",
        "Requests handled, by endpoint (`errors` counts 4xx/5xx answers).",
        "counter",
    );
    for (endpoint, count) in state.requests.snapshot() {
        b.sample(
            "mcdla_requests_total",
            &[("endpoint", endpoint)],
            count as f64,
        );
    }
    b.scalar(
        "mcdla_open_connections",
        "Connections attached to the event loop right now.",
        "gauge",
        state.loop_stats.open() as f64,
    );
    b.scalar(
        "mcdla_accepted_connections_total",
        "Connections accepted since start.",
        "counter",
        state.loop_stats.accepted() as f64,
    );
    b.scalar(
        "mcdla_requests_shed_total",
        "Requests answered 429 because the admission queue was full.",
        "counter",
        state.loop_stats.shed() as f64,
    );
    b.scalar(
        "mcdla_request_timeouts_total",
        "Requests answered 408 after stalling mid-head or mid-body.",
        "counter",
        state.loop_stats.request_timeouts() as f64,
    );
    b.scalar(
        "mcdla_idle_connections_closed_total",
        "Idle keep-alive connections closed silently.",
        "counter",
        state.loop_stats.idle_closed() as f64,
    );
    b.scalar(
        "mcdla_store_hits_total",
        "Requests answered from the result cache (including coalesced waiters).",
        "counter",
        stats.hits as f64,
    );
    b.scalar(
        "mcdla_store_misses_total",
        "Cells actually simulated.",
        "counter",
        stats.misses as f64,
    );
    b.scalar(
        "mcdla_store_evictions_total",
        "Entries evicted to stay within the capacity bound.",
        "counter",
        stats.evictions as f64,
    );
    b.scalar(
        "mcdla_store_dedup_waits_total",
        "Requests that coalesced onto another caller's in-flight simulation.",
        "counter",
        stats.dedup_waits as f64,
    );
    b.scalar(
        "mcdla_store_in_flight",
        "Simulations executing right now.",
        "gauge",
        stats.in_flight as f64,
    );
    b.scalar(
        "mcdla_store_entries",
        "Distinct cells currently resident.",
        "gauge",
        stats.entries as f64,
    );
    if let Some(capacity) = stats.capacity {
        b.scalar(
            "mcdla_store_capacity",
            "Configured result-store capacity bound.",
            "gauge",
            capacity as f64,
        );
    }
    b.family(
        "mcdla_stage_hits_total",
        "Staged-engine memo-table lookups answered from the table, by stage.",
        "counter",
    );
    for stage in &stats.stages {
        b.sample(
            "mcdla_stage_hits_total",
            &[("stage", &stage.stage)],
            stage.hits as f64,
        );
    }
    b.family(
        "mcdla_stage_misses_total",
        "Staged-engine artifacts actually built, by stage.",
        "counter",
    );
    for stage in &stats.stages {
        b.sample(
            "mcdla_stage_misses_total",
            &[("stage", &stage.stage)],
            stage.misses as f64,
        );
    }
    b.family(
        "mcdla_stage_evictions_total",
        "Staged-engine memo entries evicted to stay within each table's bound.",
        "counter",
    );
    for stage in &stats.stages {
        b.sample(
            "mcdla_stage_evictions_total",
            &[("stage", &stage.stage)],
            stage.evictions as f64,
        );
    }
    b.family(
        "mcdla_stage_entries",
        "Staged-engine artifacts currently resident, by stage.",
        "gauge",
    );
    for stage in &stats.stages {
        b.sample(
            "mcdla_stage_entries",
            &[("stage", &stage.stage)],
            stage.entries as f64,
        );
    }
    b.histogram_family(
        "mcdla_request_seconds",
        "Request latency by endpoint, seconds.",
    );
    for (endpoint, snap) in state.latency.snapshots() {
        b.histogram("mcdla_request_seconds", &[("endpoint", endpoint)], &snap);
    }
    b.histogram_family(
        "mcdla_stage_seconds",
        "Staged-engine section latency (lookup plus compute on miss), by stage, seconds.",
    );
    for (stage, snap) in mcdla_core::stages::stage_latency() {
        b.histogram("mcdla_stage_seconds", &[("stage", stage)], &snap);
    }
    b.finish()
}

fn parse_body<T: Deserialize>(body: &[u8], what: &str) -> Result<T, Outcome> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Outcome::error(400, &format!("{what} body is not valid utf-8")))?;
    serde::json::from_str(text).map_err(|e| Outcome::error(400, &format!("bad {what} JSON: {e}")))
}

/// One result cell as the wire represents it (shared by `/simulate`,
/// `/grid`, and the batch `mcdla simulate` subcommand, which is what
/// makes served and batch output diffable).
pub fn cell_value(
    scenario: &Scenario,
    report: &mcdla_core::IterationReport,
    cached: bool,
) -> Value {
    Value::Map(vec![
        ("scenario".into(), scenario.to_value()),
        (
            "digest".into(),
            Value::Str(format!("{:016x}", scenario.digest())),
        ),
        ("cached".into(), Value::Bool(cached)),
        ("report".into(), report.to_value()),
    ])
}

fn simulate_endpoint(body: &[u8], state: &Arc<ServerState>) -> Outcome {
    let scenario: Scenario = match parse_body(body, "scenario") {
        Ok(s) => s,
        Err(outcome) => return outcome,
    };
    if let Err(msg) = scenario.validate() {
        return Outcome::error(400, &msg);
    }
    let fetched = {
        let _s = Span::enter("store.get_or_compute");
        state.store.get_or_compute(scenario, || scenario.simulate())
    };
    let computed = fetched.provenance == Provenance::Computed;
    Outcome {
        computed_cells: usize::from(computed),
        ..Outcome::ok(serde::json::to_string_pretty(&cell_value(
            &scenario,
            &fetched.report,
            !computed,
        )))
    }
}

/// The `POST /grid` request: cartesian axes, each optional, defaulting
/// to the paper's §V matrix axis (all designs, all benchmarks, both
/// strategies, paper-default knobs).
#[derive(Debug, Default, Deserialize, Serialize)]
pub struct GridRequest {
    /// System-design axis.
    pub designs: Option<Vec<SystemDesign>>,
    /// Benchmark axis.
    pub benchmarks: Option<Vec<Benchmark>>,
    /// Parallelization-strategy axis.
    pub strategies: Option<Vec<ParallelStrategy>>,
    /// Device-count axis.
    pub devices: Option<Vec<usize>>,
    /// Global-batch axis.
    pub batches: Option<Vec<u64>>,
    /// Device-generation axis.
    pub generations: Option<Vec<DeviceGeneration>>,
    /// Overrides axis.
    pub overrides: Option<Vec<Overrides>>,
    /// Fabric-topology axis; `null` entries select the analytical
    /// collective model, names select a routed flow-level fabric
    /// (`[null, "Ring"]` mixes both in one grid).
    pub topologies: Option<Vec<Option<FabricTopology>>>,
    /// An **explicit** cell list instead of cartesian axes — the form the
    /// `mcdla-cluster` gateway scatters with, since a consistent-hash
    /// partition of a grid is not itself a cartesian product. Mutually
    /// exclusive with every axis field; cells run in list order.
    pub cells: Option<Vec<Scenario>>,
}

impl GridRequest {
    /// Expands the request into concrete scenarios, bounded by
    /// [`MAX_GRID_CELLS`] (the buffered `POST /grid` limit).
    pub fn scenarios(&self) -> Result<Vec<Scenario>, String> {
        self.scenarios_bounded(MAX_GRID_CELLS)
    }

    /// Expands the request into concrete scenarios, rejecting grids over
    /// `max_cells` (streamed requests use [`MAX_STREAM_CELLS`]).
    pub fn scenarios_bounded(&self, max_cells: usize) -> Result<Vec<Scenario>, String> {
        if let Some(cells) = &self.cells {
            if self.designs.is_some()
                || self.benchmarks.is_some()
                || self.strategies.is_some()
                || self.devices.is_some()
                || self.batches.is_some()
                || self.generations.is_some()
                || self.overrides.is_some()
                || self.topologies.is_some()
            {
                return Err("`cells` cannot be combined with axis fields".into());
            }
            if cells.is_empty() {
                return Err("`cells` must name at least one scenario".into());
            }
            if cells.len() > max_cells {
                return Err(format!(
                    "grid names {} cells; the limit is {max_cells}",
                    cells.len()
                ));
            }
            return Ok(cells.clone());
        }
        let mut grid = ScenarioGrid::paper_default();
        if let Some(designs) = &self.designs {
            grid = grid.designs(designs);
        }
        if let Some(benchmarks) = &self.benchmarks {
            grid = grid.benchmarks(benchmarks);
        }
        if let Some(strategies) = &self.strategies {
            grid = grid.strategies(strategies);
        }
        if let Some(devices) = &self.devices {
            if devices.contains(&0) {
                return Err("device counts must be >= 1".into());
            }
            grid = grid.device_counts(devices);
        }
        if let Some(batches) = &self.batches {
            if batches.contains(&0) {
                return Err("batch sizes must be >= 1".into());
            }
            grid = grid.batches(batches);
        }
        if let Some(generations) = &self.generations {
            grid = grid.generations(generations);
        }
        if let Some(overrides) = &self.overrides {
            grid = grid.overrides(overrides);
        }
        if let Some(topologies) = &self.topologies {
            grid = grid.topology_axis(topologies);
        }
        if grid.is_empty() {
            return Err("grid expands to zero cells (an axis is empty)".into());
        }
        if grid.len() > max_cells {
            return Err(format!(
                "grid expands to {} cells; the limit is {max_cells}",
                grid.len()
            ));
        }
        Ok(grid.scenarios())
    }
}

/// Parses and validates a grid body into runnable scenarios.
fn grid_scenarios(body: &[u8], max_cells: usize) -> Result<Vec<Scenario>, Outcome> {
    let request: GridRequest = parse_body(body, "grid")?;
    let scenarios = request
        .scenarios_bounded(max_cells)
        .map_err(|msg| Outcome::error(400, &msg))?;
    if let Some(msg) = scenarios.iter().find_map(|s| s.validate().err()) {
        return Err(Outcome::error(400, &msg));
    }
    Ok(scenarios)
}

fn grid_endpoint(body: &[u8], state: &Arc<ServerState>) -> Outcome {
    let scenarios = match grid_scenarios(body, MAX_GRID_CELLS) {
        Ok(s) => s,
        Err(outcome) => return outcome,
    };
    let runs = state.runner.run_grid_timed(&scenarios);
    let computed_cells = runs.iter().filter(|t| !t.cached).count();
    let cells: Vec<Value> = runs
        .iter()
        .map(|t| cell_value(&t.scenario, &t.report, t.cached))
        .collect();
    Outcome {
        computed_cells,
        ..Outcome::ok(serde::json::to_string_pretty(&Value::Map(vec![
            ("count".into(), Value::U64(runs.len() as u64)),
            ("cells".into(), Value::Seq(cells)),
        ])))
    }
}

/// How `POST /grid?stream=1` ended.
enum StreamOutcome {
    /// The request was rejected before any chunk was written; answer
    /// with a normal buffered error response.
    Rejected(Outcome),
    /// The 200 head went out and cells streamed. `clean` is false when
    /// the client disappeared (or a write failed) mid-stream — the
    /// connection must close without the terminal chunk.
    Streamed {
        computed_cells: usize,
        /// Payload bytes written (cell lines, not chunk framing).
        bytes: u64,
        clean: bool,
    },
}

/// Streams a grid as chunked NDJSON: one [`cell_value`] object per
/// line, one line per chunk, written **as workers finish** (completion
/// order). Cells are memoized through the same shared store as every
/// other endpoint, so streamed payloads are byte-identical to the
/// buffered `/grid` cells for the same scenarios.
fn stream_grid(
    body: &[u8],
    state: &Arc<ServerState>,
    writer: &mut TcpStream,
    keep_alive: bool,
    rid: &str,
) -> StreamOutcome {
    let scenarios = match grid_scenarios(body, MAX_STREAM_CELLS) {
        Ok(s) => s,
        Err(outcome) => return StreamOutcome::Rejected(outcome),
    };
    if write_chunked_head_with(writer, 200, &[(REQUEST_ID_HEADER, rid)], keep_alive).is_err() {
        return StreamOutcome::Streamed {
            computed_cells: 0,
            bytes: 0,
            clean: false,
        };
    }
    let buffer = 2 * state.runner.threads();
    let mut computed_cells = 0usize;
    let mut bytes = 0u64;
    for run in state.runner.run_grid_streaming(scenarios, buffer) {
        computed_cells += usize::from(!run.cached);
        let mut line = serde::json::to_string(&cell_value(&run.scenario, &run.report, run.cached));
        line.push('\n');
        if write_chunk(writer, line.as_bytes()).is_err() {
            // The client went away mid-stream: dropping the stream
            // cancels the remaining cells; close without the terminator.
            return StreamOutcome::Streamed {
                computed_cells,
                bytes,
                clean: false,
            };
        }
        bytes += line.len() as u64;
    }
    StreamOutcome::Streamed {
        computed_cells,
        bytes,
        clean: finish_chunked(writer).is_ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_request_defaults_to_the_paper_matrix() {
        let req: GridRequest = serde::json::from_str("{}").unwrap();
        assert_eq!(req.scenarios().unwrap().len(), 6 * 8 * 2);
    }

    #[test]
    fn grid_request_restricts_axes() {
        let req: GridRequest = serde::json::from_str(
            r#"{"designs": ["DcDla", "McDlaBwAware"],
                "benchmarks": ["AlexNet"],
                "strategies": ["DataParallel"],
                "batches": [128, 512]}"#,
        )
        .unwrap();
        assert_eq!(req.scenarios().unwrap().len(), 2 * 2);
    }

    #[test]
    fn grid_request_opens_the_topology_axis() {
        // `null` keeps the analytical model; names (wire or label, any
        // case) select routed fabrics — so one grid can hold both.
        let req: GridRequest = serde::json::from_str(
            r#"{"benchmarks": ["AlexNet"],
                "designs": ["DcDla"],
                "strategies": ["DataParallel"],
                "topologies": [null, "Ring", "pooled-switch"]}"#,
        )
        .unwrap();
        let cells = req.scenarios().unwrap();
        assert_eq!(cells.len(), 3);
        let topologies: Vec<_> = cells.iter().map(|s| s.topology).collect();
        assert_eq!(
            topologies,
            vec![
                None,
                Some(FabricTopology::Ring),
                Some(FabricTopology::PooledSwitch)
            ]
        );
        // An unknown fabric answers with the accepted list.
        let err = serde::json::from_str::<GridRequest>(r#"{"topologies": ["torus"]}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("pooled-switch"), "{err}");
    }

    #[test]
    fn grid_request_rejects_hostile_axes() {
        let zero: GridRequest = serde::json::from_str(r#"{"batches": [0]}"#).unwrap();
        assert!(zero.scenarios().is_err());
        let empty: GridRequest = serde::json::from_str(r#"{"designs": []}"#).unwrap();
        assert!(empty.scenarios().unwrap_err().contains("zero cells"));
        let huge: GridRequest = serde::json::from_str(
            r#"{"batches": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,
                17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36,37,38,39,40,
                41,42,43,44,45,46,47,48,49,50,51,52,53,54,55,56,57,58,59,60,61,62,63,64,
                65,66,67,68,69,70,71,72,73,74,75,76,77,78,79,80,81,82,83,84,85,86,87,88,
                89,90,91,92,93,94,95,96,97,98,99,100,101,102,103,104,105]}"#,
        )
        .unwrap();
        assert!(huge.scenarios().unwrap_err().contains("limit"));
    }

    #[test]
    fn zero_threads_and_zero_capacity_are_clear_errors() {
        let err = Server::bind(&ServeConfig {
            threads: 0,
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("thread count must be >= 1"), "{err}");
        let err = Server::bind(&ServeConfig {
            cache_cap: Some(0),
            ..ServeConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("capacity must be >= 1"), "{err}");
    }
}
