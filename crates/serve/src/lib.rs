//! # `mcdla-serve` — the persistent scenario-simulation service
//!
//! PR 1 made the KwonR18 reproduction a batch tool: every `mcdla`
//! invocation cold-starts, simulates, and exits. This crate is the
//! long-running layer on top of the same engine: a hand-rolled HTTP/1.1
//! server on a non-blocking epoll event loop ([`accept`], over raw
//! syscalls — the build environment has no crates.io access) whose
//! handlers and batch grids share one
//! [`ResultStore`](mcdla_core::ResultStore) — sharded, capacity-bounded,
//! LRU-evicting, single-flight-deduplicating, and snapshot-warmable, so
//! a restarted service answers its first requests from cache. The event
//! loop owns all connection I/O (pipelining, timeouts, 429
//! load-shedding); simulation runs on a bounded blocking worker pool.
//!
//! ## Endpoints
//!
//! | endpoint | body | answer |
//! |---|---|---|
//! | `POST /simulate` | one serde [`Scenario`](mcdla_core::Scenario) | `{scenario, digest, cached, report}` |
//! | `POST /grid` | cartesian axes ([`GridRequest`]) | `{count, cells: [...]}` |
//! | `POST /grid?stream=1` | cartesian axes ([`GridRequest`]) | chunked NDJSON, one cell per line |
//! | `GET /healthz` | — | `{"status":"ok"}` + uptime/build info |
//! | `GET /stats` | — | store + request counters |
//! | `GET /metrics` | — | Prometheus exposition (counters + latency histograms) |
//! | `GET /debug/trace/<id>` | — | one recorded span tree ([`trace`]) |
//! | `GET /debug/requests` | — | the flight-recorder listing |
//!
//! Every response echoes `X-Mcdla-Request-Id`, every request records
//! a trace into the per-server flight recorder, and `?trace=1` on
//! `POST /simulate` / `POST /grid` inlines the span tree in the
//! response (see `docs/observability.md`).
//!
//! `docs/protocol.md` in the repository root specifies the JSON; served
//! reports are bit-identical to the batch `Runner`'s (the wire tests
//! pin this).
//!
//! ## Example
//!
//! ```
//! use mcdla_serve::{client, ServeConfig, Server};
//!
//! let server = Server::bind(&ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let handle = server.spawn().unwrap();
//! let addr = handle.addr().to_string();
//!
//! let health = client::request_once(&addr, "GET", "/healthz", None).unwrap();
//! assert_eq!(health.status, 200);
//! assert!(health.body.contains("\"ok\""));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accept;
pub mod client;
pub mod epoll;
pub mod http;
pub mod metrics;
mod server;
pub mod trace;

pub use server::{
    cell_value, GridRequest, ServeConfig, Server, ServerHandle, MAX_GRID_CELLS, MAX_STREAM_CELLS,
};
