//! Thin wrappers over the raw Linux `epoll` and `eventfd` syscalls.
//!
//! No external crates: `std` already links libc, so the four symbols
//! the event loop needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`) are declared here directly. Both wrappers own their file
//! descriptor and close it on drop. Linux-only by construction — the
//! serve tier targets the same x86_64 Linux hosts the benchmarks and
//! CI run on.

use std::io;
use std::os::fd::RawFd;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup (always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// `EPOLLEXCLUSIVE`: wake only one of the loops sharing a listener.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness event: a bitmask of `EPOLL*` flags plus the opaque
/// token registered with the fd. Layout matches the kernel's
/// `struct epoll_event` (packed on x86_64).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct Event {
    /// Ready-state bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The token passed at registration time.
    pub token: u64,
}

/// One readiness event (non-x86_64 layout: naturally aligned).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct Event {
    /// Ready-state bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The token passed at registration time.
    pub token: u64,
}

// Manual, because `derive(Debug)` would take references into a packed
// struct on x86_64.
impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, token) = ({ self.events }, { self.token });
        f.debug_struct("Event")
            .field("events", &events)
            .field("token", &token)
            .finish()
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// An epoll instance (level-triggered readiness queries).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `events`, delivering `token` on readiness.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set for `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set (closing an fd does this
    /// implicitly, but detaching a live connection must be explicit).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = Event { events, token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks up to `timeout_ms` for readiness; fills `events` and
    /// returns how many are valid. `EINTR` reads as zero events.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed waker: any thread calls [`Waker::wake`] to make
/// the owning loop's `epoll_wait` return.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register with the loop's [`Epoll`] (`EPOLLIN`).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the loop. Never blocks: the eventfd counter saturating
    /// (`EAGAIN`) still leaves it readable, which is all a wake needs.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains pending wakes so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut count = [0u8; 8];
        unsafe { read(self.fd, count.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_round_trip() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [Event {
            events: 0,
            token: 0,
        }; 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "nothing ready yet");

        let mut client = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].token }, 7);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        // Accept, register the conn, and see its readable edge too.
        let (conn, _) = listener.accept().unwrap();
        ep.add(conn.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 9).unwrap();
        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        let seen: Vec<u64> = events[..n].iter().map(|e| e.token).collect();
        assert!(seen.contains(&9), "conn readable: {seen:?}");
        ep.del(conn.as_raw_fd()).unwrap();
        drop(conn);
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).ok();
    }

    #[test]
    fn waker_wakes_and_drains() {
        let ep = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        ep.add(waker.fd(), EPOLLIN, 1).unwrap();
        let mut events = [Event {
            events: 0,
            token: 0,
        }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        waker.wake();
        waker.wake();
        assert_eq!(ep.wait(&mut events, 2_000).unwrap(), 1);
        waker.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained");
    }
}
