//! End-to-end tracing contract against a real server: request-id
//! propagation and echo, `?trace=1` span trees, the reconciliation of
//! span counts with the staged engine's hit/miss counters, and the
//! `/debug/trace/<id>` + `/debug/requests` flight-recorder surface.
//!
//! This file is its own test binary (own process) on purpose: the
//! staged engine's tables are process-global, and the reconciliation
//! below compares counter deltas around a single request.

use mcdla_serve::client::Connection;
use mcdla_serve::{ServeConfig, Server, ServerHandle};
use serde::Value;

const RID_HEADER: &str = "x-mcdla-request-id";

/// A scenario no other test in this binary touches, so its first
/// `/simulate` is a genuine cold cell.
const CELL: &str =
    r#"{"design":"McDlaBwAware","benchmark":"GoogLeNet","strategy":"DataParallel","batch":272}"#;

fn start() -> (ServerHandle, String) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// `(stage, hits + misses)` per staged-engine table, scraped from
/// `GET /stats`.
fn stage_work(conn: &mut Connection) -> Vec<(String, u64)> {
    let resp = conn.request("GET", "/stats", None).expect("stats");
    assert_eq!(resp.status, 200);
    let parsed = serde::json::parse(&resp.body).expect("stats JSON");
    parsed
        .get("store")
        .and_then(|s| s.get("stages"))
        .and_then(|s| s.as_seq())
        .expect("store.stages")
        .iter()
        .map(|stage| {
            let name = stage.get("stage").and_then(|v| v.as_str()).unwrap();
            let hits = stage.get("hits").and_then(|v| v.as_u64()).unwrap();
            let misses = stage.get("misses").and_then(|v| v.as_u64()).unwrap();
            (name.to_owned(), hits + misses)
        })
        .collect()
}

/// Span names in a trace object, in recording order.
fn span_names(trace: &Value) -> Vec<String> {
    trace
        .get("spans")
        .and_then(|s| s.as_seq())
        .expect("trace.spans")
        .iter()
        .map(|s| s.get("name").and_then(|v| v.as_str()).unwrap().to_owned())
        .collect()
}

#[test]
fn traced_simulate_reconciles_spans_with_stage_counters() {
    let (handle, addr) = start();
    let mut conn = Connection::open(&addr).expect("open");

    // --- Cold request: every engine stage does one unit of work. ---
    let before = stage_work(&mut conn);
    let resp = conn
        .request_with(
            "POST",
            "/simulate?trace=1",
            &[(RID_HEADER, "trace-reconcile-cold")],
            Some(CELL),
        )
        .expect("cold traced simulate");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // The response echoes the propagated request id.
    assert_eq!(resp.header(RID_HEADER), Some("trace-reconcile-cold"));
    let after = stage_work(&mut conn);

    let parsed = serde::json::parse(&resp.body).expect("simulate JSON");
    // The simulation payload is intact alongside the graft.
    assert!(parsed.get("report").is_some(), "{}", resp.body);
    let trace = parsed.get("trace").expect("trace grafted into the body");
    assert_eq!(
        trace.get("id").and_then(|v| v.as_str()),
        Some("trace-reconcile-cold")
    );
    assert_eq!(
        trace.get("endpoint").and_then(|v| v.as_str()),
        Some("simulate")
    );
    assert_eq!(trace.get("status").and_then(|v| v.as_u64()), Some(200));

    let names = span_names(trace);
    assert!(
        names.iter().any(|n| n == "store.get_or_compute"),
        "{names:?}"
    );
    assert!(names.iter().any(|n| n == "engine.simulate"), "{names:?}");

    // Reconcile: for each spanned stage table, the number of `stage.X`
    // spans in this trace equals the table's (hits + misses) delta
    // around the request. The per-op `collective` table runs inside the
    // `sync` section and is deliberately not spanned.
    for (stage, work_before) in &before {
        if stage == "collective" {
            continue;
        }
        let work_after = after
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, w)| *w)
            .unwrap();
        let spans = names
            .iter()
            .filter(|n| **n == format!("stage.{stage}"))
            .count() as u64;
        assert_eq!(
            spans,
            work_after - work_before,
            "stage `{stage}`: {spans} spans vs {} lookups ({names:?})",
            work_after - work_before
        );
    }

    // --- Cached request: answered from the ResultStore, so the staged
    // engine never runs and the trace has no stage spans. ---
    let resp = conn
        .request_with(
            "POST",
            "/simulate?trace=1",
            &[(RID_HEADER, "trace-reconcile-warm")],
            Some(CELL),
        )
        .expect("warm traced simulate");
    assert_eq!(resp.status, 200);
    let parsed = serde::json::parse(&resp.body).expect("simulate JSON");
    let names = span_names(parsed.get("trace").expect("warm trace"));
    assert!(
        names.iter().any(|n| n == "store.get_or_compute"),
        "{names:?}"
    );
    assert!(
        !names.iter().any(|n| n.starts_with("stage.")),
        "a cached answer must not re-run engine stages: {names:?}"
    );

    // --- The flight recorder replays both traces. ---
    let rec = conn
        .request("GET", "/debug/trace/trace-reconcile-cold", None)
        .expect("debug trace");
    assert_eq!(rec.status, 200);
    let rec = serde::json::parse(&rec.body).expect("trace JSON");
    assert!(
        span_names(&rec).iter().any(|n| n == "engine.simulate"),
        "{}",
        serde::json::to_string(&rec)
    );

    let listing = conn
        .request("GET", "/debug/requests?endpoint=simulate&sort=slow", None)
        .expect("debug requests");
    assert_eq!(listing.status, 200);
    assert!(
        listing.body.contains("trace-reconcile-cold"),
        "{}",
        listing.body
    );
    assert!(
        listing.body.contains("trace-reconcile-warm"),
        "{}",
        listing.body
    );

    // An id the recorder never saw is a 404, not a panic.
    let missing = conn
        .request("GET", "/debug/trace/no-such-id", None)
        .expect("missing trace");
    assert_eq!(missing.status, 404);

    // Untraced responses carry no graft but still echo a generated id.
    let plain = conn
        .request("POST", "/simulate", Some(CELL))
        .expect("plain simulate");
    assert_eq!(plain.status, 200);
    assert!(!plain.body.contains("\"trace\""));
    let generated = plain.header(RID_HEADER).expect("generated request id");
    assert_eq!(generated.len(), 16, "generated id: {generated}");

    handle.shutdown();
}

#[test]
fn metrics_expose_request_and_stage_histograms() {
    let (handle, addr) = start();
    let mut conn = Connection::open(&addr).expect("open");
    // One request so the simulate endpoint histogram has a count.
    let resp = conn
        .request(
            "POST",
            "/simulate",
            Some(r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel"}"#),
        )
        .expect("simulate");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let metrics = conn.request("GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = &metrics.body;
    for family in [
        "# TYPE mcdla_request_seconds histogram",
        "# TYPE mcdla_stage_seconds histogram",
        "mcdla_request_seconds_bucket{endpoint=\"simulate\",le=\"+Inf\"}",
        "mcdla_request_seconds_sum{endpoint=\"simulate\"}",
        "mcdla_request_seconds_count{endpoint=\"simulate\"}",
        "mcdla_stage_seconds_bucket{stage=\"fabric\",le=\"+Inf\"}",
        "mcdla_build_info{",
        "mcdla_uptime_seconds",
    ] {
        assert!(text.contains(family), "metrics missing `{family}`:\n{text}");
    }
    // The simulate endpoint saw at least one request.
    let count_line = text
        .lines()
        .find(|l| l.starts_with("mcdla_request_seconds_count{endpoint=\"simulate\"}"))
        .expect("simulate count line");
    let count: f64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 1.0, "{count_line}");

    // /healthz and /stats carry uptime + build info.
    let health = conn.request("GET", "/healthz", None).expect("healthz");
    assert!(health.body.contains("uptime_seconds"), "{}", health.body);
    assert!(health.body.contains("\"build\""), "{}", health.body);
    let stats = conn.request("GET", "/stats", None).expect("stats");
    assert!(stats.body.contains("uptime_seconds"), "{}", stats.body);
    assert!(stats.body.contains("\"recorder\""), "{}", stats.body);

    handle.shutdown();
}

/// The `/debug/requests?sort=slow` listing is a *total* order even when
/// the striped flight recorder was fed by racing writers: `total_us`
/// non-increasing, and within equal latencies `seq` strictly
/// decreasing (newest first). No pair of entries is ever incomparable
/// or duplicated.
#[test]
fn slow_sorted_listing_is_a_total_order_under_concurrent_writers() {
    let (handle, addr) = start();
    // Race cheap requests from several connections: healthz latencies
    // cluster in the same microsecond buckets, so ties are guaranteed.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut conn = Connection::open(&addr).expect("open");
                for _ in 0..100 {
                    let resp = conn.request("GET", "/healthz", None).expect("healthz");
                    assert_eq!(resp.status, 200);
                }
            });
        }
    });

    let mut conn = Connection::open(&addr).expect("open");
    let resp = conn
        .request("GET", "/debug/requests?sort=slow&limit=500", None)
        .expect("listing");
    assert_eq!(resp.status, 200);
    let parsed = serde::json::parse(&resp.body).expect("listing JSON");
    let requests = parsed
        .get("requests")
        .and_then(|v| v.as_seq())
        .expect("requests array");
    assert!(
        requests.len() >= 400,
        "all 400 raced requests are retained (cap 1024), got {}",
        requests.len()
    );
    let keys: Vec<(u64, u64)> = requests
        .iter()
        .map(|r| {
            (
                r.get("total_us")
                    .and_then(|v| v.as_u64())
                    .expect("total_us"),
                r.get("seq").and_then(|v| v.as_u64()).expect("seq"),
            )
        })
        .collect();
    for pair in keys.windows(2) {
        let ((us_a, seq_a), (us_b, seq_b)) = (pair[0], pair[1]);
        assert!(
            us_a > us_b || (us_a == us_b && seq_a > seq_b),
            "listing must be strictly ordered by (total_us desc, seq desc): \
             ({us_a}, {seq_a}) then ({us_b}, {seq_b})"
        );
    }
    handle.shutdown();
}

/// The worker's `/metrics/history` surface: the sampler populates the
/// rings, timestamps are monotone, and `?series=`/`?last=` filter and
/// bound the answer.
#[test]
fn metrics_history_serves_filtered_bounded_monotone_rings() {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        sample_ms: Some(40),
        ..ServeConfig::default()
    })
    .expect("bind sampled server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();
    let mut conn = Connection::open(&addr).expect("open");

    // Generate traffic across two sampler windows.
    for _ in 0..50 {
        let resp = conn.request("GET", "/healthz", None).expect("healthz");
        assert_eq!(resp.status, 200);
    }
    std::thread::sleep(std::time::Duration::from_millis(150));

    let resp = conn
        .request("GET", "/metrics/history", None)
        .expect("history");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = serde::json::parse(&resp.body).expect("history JSON");
    assert_eq!(
        parsed.get("service").and_then(|v| v.as_str()),
        Some("mcdla-serve")
    );
    let samples = parsed
        .get("samples")
        .and_then(|v| v.as_u64())
        .expect("samples");
    assert!(samples >= 2, "sampler at 40 ms must have ticked: {samples}");
    let stamps: Vec<u64> = parsed
        .get("timestamps_ms")
        .and_then(|v| v.as_seq())
        .expect("timestamps_ms")
        .iter()
        .map(|v| v.as_u64().expect("stamp"))
        .collect();
    assert_eq!(stamps.len() as u64, samples);
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "timestamps must be monotone: {stamps:?}"
    );
    let series = parsed
        .get("series")
        .and_then(|v| v.as_map())
        .expect("series map");
    for name in [
        "req_per_s",
        "healthz.req_per_s",
        "store.hit_rate",
        "rss_bytes",
    ] {
        let ring = series
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_seq())
            .unwrap_or_else(|| panic!("series {name} missing"));
        assert_eq!(ring.len() as u64, samples, "every ring spans every sample");
    }
    // The 50 healthz requests show up in some window of their series.
    let healthz_peak = series
        .iter()
        .find(|(k, _)| k == "healthz.req_per_s")
        .and_then(|(_, v)| v.as_seq())
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .fold(0.0f64, f64::max);
    assert!(healthz_peak > 0.0, "healthz traffic must register");

    // ?series= filters, ?last= bounds.
    let resp = conn
        .request("GET", "/metrics/history?series=req_per_s&last=2", None)
        .expect("filtered history");
    let parsed = serde::json::parse(&resp.body).expect("filtered JSON");
    let series = parsed
        .get("series")
        .and_then(|v| v.as_map())
        .expect("filtered series");
    assert_eq!(series.len(), 1, "series filter must drop other rings");
    assert_eq!(series[0].0, "req_per_s");
    let bounded = parsed.get("samples").and_then(|v| v.as_u64()).unwrap();
    assert!(bounded <= 2, "last=2 must bound samples, got {bounded}");

    handle.shutdown();
}
