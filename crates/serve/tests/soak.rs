//! Keep-alive soak: thousands of simultaneously-open idle connections
//! against one server. Under the old thread-per-connection accept pool
//! this was impossible — every parked connection pinned a thread in a
//! blocking read. The event loop holds them all in one epoll interest
//! set, so thread count and memory stay flat no matter how many clients
//! park.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use mcdla_serve::{ServeConfig, Server};

/// How many idle keep-alive connections the soak parks (clamped to the
/// process fd limit — client and server ends both live in this test
/// process, so each connection costs two descriptors).
const TARGET_CONNS: usize = 10_000;

/// Descriptors reserved for everything that isn't a soak connection
/// (test harness, listener, epoll/eventfd, stdio).
const FD_HEADROOM: u64 = 512;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

const RLIMIT_NOFILE: i32 = 7;

/// Raises the soft fd limit to the hard limit and returns the result.
fn max_fd_limit() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.cur < lim.max {
        let raised = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return lim.max;
        }
    }
    lim.cur
}

/// A field from `/proc/self/status` (e.g. `Threads`, `VmRSS`), parsed
/// as the first integer on its line.
fn proc_status(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Pulls `"field": <number>` out of a JSON body without a full parser.
fn json_u64_field(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn ten_thousand_idle_keep_alive_connections_stay_cheap() {
    let fd_limit = max_fd_limit();
    let conns = TARGET_CONNS.min(((fd_limit.saturating_sub(FD_HEADROOM)) / 2) as usize);
    assert!(
        conns >= 1_000,
        "fd limit {fd_limit} leaves room for only {conns} connections — too few to soak"
    );

    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        // Idle connections must survive the whole soak.
        idle_timeout: Duration::from_secs(300),
        request_timeout: Duration::from_secs(300),
        ..ServeConfig::default()
    })
    .expect("bind soak server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();

    let threads_before = proc_status("Threads").expect("read Threads");

    // Park `conns` keep-alive connections: each serves one request (so
    // it is established and attached, not just SYN-queued) and then
    // goes idle.
    let mut parked = Vec::with_capacity(conns);
    for i in 0..conns {
        let stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
            panic!("connect #{i} of {conns} failed: {e}");
        });
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        parked.push(stream);
    }
    // First-and-only request on a sample of parked connections, spread
    // across the set, proving the loop serves any of them while all of
    // them stay open.
    let request = b"GET /healthz HTTP/1.1\r\nhost: soak\r\n\r\n";
    let sample: Vec<usize> = (0..conns).step_by((conns / 64).max(1)).collect();
    for &i in &sample {
        parked[i].write_all(request).expect("sampled request");
        let mut buf = [0u8; 4096];
        let n = parked[i].read(&mut buf).expect("sampled response");
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(
            text.starts_with("HTTP/1.1 200 "),
            "sampled conn #{i} answered:\n{text}"
        );
    }

    // Thread count is flat: the loop + the fixed worker pool, not one
    // thread per connection. (The old accept pool would need `conns`
    // threads here.)
    let threads_during = proc_status("Threads").expect("read Threads");
    assert!(
        threads_during <= threads_before + 16,
        "{conns} idle connections grew the thread count {threads_before} -> {threads_during}"
    );

    // Memory stays bounded: parked connections hold empty buffers. The
    // bound is deliberately loose (debug build, allocator slack) — the
    // regression it catches is per-connection threads/stacks or
    // runaway per-connection buffering, which would blow past this by
    // an order of magnitude.
    if let Some(rss_kb) = proc_status("VmRSS") {
        assert!(
            rss_kb < 2_000_000,
            "{conns} idle connections pushed VmRSS to {rss_kb} kB"
        );
    }

    // The server still answers new connections promptly with the whole
    // herd parked.
    let health = mcdla_serve::client::request_once(&addr, "GET", "/healthz", None)
        .expect("healthz with herd parked");
    assert_eq!(health.status, 200);

    // Every parked connection is still open: the server-side open-conn
    // gauge counts the herd (sampled conns included; the probe above
    // already closed).
    let stats = mcdla_serve::client::request_once(&addr, "GET", "/stats", None)
        .expect("stats with herd parked");
    let open = json_u64_field(&stats.body, "open").expect("connections.open in stats");
    assert!(
        open >= conns as u64,
        "expected >= {conns} open connections, stats says {open}"
    );

    drop(parked);
    handle.shutdown();
}
