//! Pipelining, keep-alive, and desync-defense integration tests: a real
//! server on an ephemeral loopback port, driven over raw sockets. Pins
//! the ISSUE-8 wire contracts: pipelined requests answer in order
//! however the bytes arrive (one segment, split mid-head, split
//! mid-body), request-smuggling-shaped input answers 4xx/501 and closes
//! the connection, the keep-alive version table holds over the wire,
//! admission control sheds 429 under load, and a stalled mid-request
//! connection answers 408.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mcdla_serve::client::Connection;
use mcdla_serve::{ServeConfig, Server, ServerHandle};

fn start(config: ServeConfig) -> (ServerHandle, String) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();
    (handle, addr)
}

const CELL: &str = r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel"}"#;

/// Two pipelined requests as raw bytes: a `/simulate` for the (warmed)
/// cell followed by a `GET /healthz`, with distinctive bodies so the
/// response order is checkable.
fn two_pipelined() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "POST /simulate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{CELL}",
            CELL.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    out
}

/// Writes `segments` with a pause between each, half-closes, and reads
/// everything the server answers.
fn segmented_roundtrip(addr: &str, segments: &[&[u8]]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for (i, segment) in segments.iter().enumerate() {
        if i > 0 {
            // Long enough that the loop observes each segment as its
            // own readiness event (it polls continuously, so even a
            // coalesced delivery still exercises incremental parsing).
            std::thread::sleep(Duration::from_millis(30));
        }
        stream.write_all(segment).expect("send segment");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read responses");
    out
}

/// Asserts the response text holds exactly a simulate answer followed by
/// a healthz answer, in that order.
fn assert_simulate_then_healthz(out: &str) {
    assert_eq!(
        out.matches("HTTP/1.1 200").count(),
        2,
        "expected two 200 responses, got:\n{out}"
    );
    let simulate_at = out.find("\"cached\"").expect("simulate body present");
    let healthz_at = out.find("\"status\"").expect("healthz body present");
    assert!(
        simulate_at < healthz_at,
        "responses out of order (simulate at {simulate_at}, healthz at {healthz_at}):\n{out}"
    );
}

#[test]
fn pipelined_identity_holds_for_one_segment_and_split_arrivals() {
    let (handle, addr) = start(ServeConfig::default());
    // Warm the cell so pipelined passes answer from cache.
    let mut warm = Connection::open(&addr).expect("open");
    assert!(warm
        .request("POST", "/simulate", Some(CELL))
        .unwrap()
        .is_ok());

    let bytes = two_pipelined();

    // (a) Both requests in one TCP segment.
    assert_simulate_then_healthz(&segmented_roundtrip(&addr, &[&bytes]));

    // (b) Split mid-head of the first request (the break lands inside
    // the `content-length` header line).
    let mid_head = 30;
    assert_simulate_then_healthz(&segmented_roundtrip(
        &addr,
        &[&bytes[..mid_head], &bytes[mid_head..]],
    ));

    // (c) Split mid-body of the first request: the first request's head
    // parses, its body is short, and the second request rides in with
    // the remaining body bytes.
    let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let mid_body = head_end + CELL.len() / 2;
    assert_simulate_then_healthz(&segmented_roundtrip(
        &addr,
        &[&bytes[..mid_body], &bytes[mid_body..]],
    ));
    handle.shutdown();
}

#[test]
fn client_pipelined_batches_answer_in_order() {
    let (handle, addr) = start(ServeConfig::default());
    let mut conn = Connection::open(&addr).expect("open");
    assert!(conn
        .request("POST", "/simulate", Some(CELL))
        .unwrap()
        .is_ok());
    let batch: Vec<(&str, &str, Option<&str>)> = vec![
        ("GET", "/healthz", None),
        ("POST", "/simulate", Some(CELL)),
        ("GET", "/stats", None),
    ];
    let responses = conn.request_pipelined(&batch).expect("pipelined batch");
    assert_eq!(responses.len(), 3);
    assert!(
        responses[0].body.contains("\"ok\""),
        "{}",
        responses[0].body
    );
    assert!(
        responses[1].body.contains("\"cached\": true"),
        "{}",
        responses[1].body
    );
    assert!(
        responses[2].body.contains("\"store\""),
        "{}",
        responses[2].body
    );
    // The connection survives the batch.
    assert!(conn.request("GET", "/healthz", None).unwrap().is_ok());
    handle.shutdown();
}

/// Sends raw bytes (no half-close) and asserts the server answers with
/// `status` **and then closes the connection** — reading past the
/// response must hit EOF, not hang until the idle timeout.
fn assert_rejected_and_closed(addr: &str, bytes: &[u8], status: u16, needle: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("send");
    let mut out = String::new();
    // read_to_string returning (rather than timing out) proves the
    // server closed the connection after the error response.
    stream.read_to_string(&mut out).expect("server must close");
    assert!(
        out.starts_with(&format!("HTTP/1.1 {status} ")),
        "expected HTTP {status}, got:\n{out}"
    );
    assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
}

#[test]
fn smuggling_shaped_requests_are_rejected_and_the_connection_closes() {
    let (handle, addr) = start(ServeConfig::default());

    // Conflicting duplicate Content-Length: classic desync primer.
    assert_rejected_and_closed(
        &addr,
        b"POST /simulate HTTP/1.1\r\nhost: t\r\ncontent-length: 5\r\ncontent-length: 8\r\n\r\nhello",
        400,
        "conflicting content-length",
    );

    // Non-digit Content-Length (`+5` parses as 5 in a naive parser).
    assert_rejected_and_closed(
        &addr,
        b"POST /simulate HTTP/1.1\r\nhost: t\r\ncontent-length: +5\r\n\r\nhello",
        400,
        "content-length",
    );

    // Transfer-Encoding is not implemented for requests: 501, never a
    // body parsed under a different framing than a front proxy used.
    assert_rejected_and_closed(
        &addr,
        b"POST /simulate HTTP/1.1\r\nhost: t\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        501,
        "transfer-encoding",
    );

    // TE + CL together (the smuggling classic) is still a hard 501.
    assert_rejected_and_closed(
        &addr,
        b"POST /simulate HTTP/1.1\r\nhost: t\r\ncontent-length: 5\r\ntransfer-encoding: chunked\r\n\r\nhello",
        501,
        "transfer-encoding",
    );
    handle.shutdown();
}

/// One raw request in `version` with optional extra header; returns
/// `(first response text, connection stayed open)`. Open-ness is probed
/// by sending a second request and seeing whether anything answers.
fn version_roundtrip(addr: &str, version: &str, extra: &str) -> (String, bool) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!("GET /healthz {version}\r\nhost: t\r\n{extra}\r\n");
    stream.write_all(request.as_bytes()).expect("send");
    // Read one response head + body (responses here are small; one read
    // pass after a short wait collects it).
    std::thread::sleep(Duration::from_millis(100));
    let mut buf = [0u8; 65536];
    let n = stream.read(&mut buf).expect("read first response");
    let first = String::from_utf8_lossy(&buf[..n]).into_owned();
    // Probe: a second request. On a closed connection the write may
    // succeed (buffered) but the read hits EOF.
    let alive = stream.write_all(request.as_bytes()).is_ok()
        && match stream.read(&mut buf) {
            Ok(0) => false,
            Ok(_) => true,
            Err(_) => false,
        };
    (first, alive)
}

#[test]
fn keep_alive_version_table_holds_over_the_wire() {
    let (handle, addr) = start(ServeConfig::default());

    // HTTP/1.1: keep-alive by default.
    let (first, alive) = version_roundtrip(&addr, "HTTP/1.1", "");
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    assert!(alive, "HTTP/1.1 default must keep the connection open");

    // HTTP/1.1 + `connection: close`: served, then closed.
    let (first, alive) = version_roundtrip(&addr, "HTTP/1.1", "connection: close\r\n");
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    assert!(!alive, "connection: close must close");

    // HTTP/1.0: close by default.
    let (first, alive) = version_roundtrip(&addr, "HTTP/1.0", "");
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    assert!(!alive, "HTTP/1.0 default must close");

    // HTTP/1.0 + `connection: keep-alive`: the opt-in is honored.
    let (first, alive) = version_roundtrip(&addr, "HTTP/1.0", "connection: keep-alive\r\n");
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    assert!(alive, "HTTP/1.0 keep-alive opt-in must hold");

    // Unknown HTTP/1.x minor: served conservatively, then closed —
    // even when the client asks for keep-alive (we don't know the
    // minor's framing rules well enough to trust persistent state).
    let (first, alive) = version_roundtrip(&addr, "HTTP/1.7", "connection: keep-alive\r\n");
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    assert!(!alive, "unknown HTTP/1.x minors must close after serving");

    // Not HTTP/1.x at all: a hard 400.
    let (first, alive) = version_roundtrip(&addr, "HTTP/2.0", "");
    assert!(first.starts_with("HTTP/1.1 400 "), "{first}");
    assert!(!alive);
    handle.shutdown();
}

#[test]
fn admission_control_sheds_429_and_fast_lanes_stay_open() {
    // One pool worker, one queue slot: the third concurrent heavy
    // request is deterministically shed while the first still runs.
    let (handle, addr) = start(ServeConfig {
        threads: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    // A burst of concurrent, previously-unseen grids (distinct batch
    // axes so the store can't answer from cache). At most two can be in
    // the system — one running, one queued — so a burst of eight lands
    // at least one 200 and several deterministic 429s; the exact split
    // depends only on how fast the single worker drains.
    let statuses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let lo = 1_000 + i as u64 * 1_000;
                    let batches: Vec<String> = (lo..lo + 250).map(|b| b.to_string()).collect();
                    let body = format!(
                        r#"{{"designs":["DcDla"],"benchmarks":["AlexNet"],"strategies":["DataParallel"],"batches":[{}]}}"#,
                        batches.join(",")
                    );
                    let mut stream = TcpStream::connect(&addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(120)))
                        .unwrap();
                    let request = format!(
                        "POST /grid HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    stream.write_all(request.as_bytes()).expect("send grid");
                    stream.shutdown(std::net::Shutdown::Write).unwrap();
                    let mut out = String::new();
                    stream.read_to_string(&mut out).expect("read grid response");
                    let status: u16 = out
                        .split(' ')
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    (status, out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = statuses.iter().filter(|(s, _)| *s == 200).count();
    let shed = statuses.iter().filter(|(s, _)| *s == 429).count();
    assert!(ok >= 1, "at least the first admitted grid must finish 200");
    assert!(
        shed >= 1,
        "a burst of 8 against 1 worker + 1 queue slot must shed; statuses: {:?}",
        statuses.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
    assert_eq!(ok + shed, 8, "every request answers 200 or 429");
    let a_shed = statuses
        .iter()
        .find(|(s, _)| *s == 429)
        .map(|(_, out)| out.clone())
        .unwrap();
    assert!(
        a_shed.to_ascii_lowercase().contains("retry-after: 1"),
        "429 must carry Retry-After:\n{a_shed}"
    );

    // The loop thread is never blocked by a saturated pool: cheap
    // endpoints answer immediately, and the shed counter shows up.
    let mut conn = Connection::open(&addr).expect("open fast-lane conn");
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let stats = conn.request("GET", "/stats", None).unwrap();
    assert!(
        stats.body.contains(&format!("\"shed\": {shed}")),
        "stats must count {shed} shed requests: {}",
        stats.body
    );
    handle.shutdown();
}

#[test]
fn stalled_mid_request_connections_answer_408() {
    let (handle, addr) = start(ServeConfig {
        request_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A partial head, then silence.
    stream.write_all(b"GET /healthz HTT").expect("send partial");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read 408");
    assert!(
        out.starts_with("HTTP/1.1 408 "),
        "stalled head must answer 408, got:\n{out}"
    );
    assert!(out.contains("head"), "408 names the stalled phase:\n{out}");

    // Stalling mid-body gets the body-phase 408.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /simulate HTTP/1.1\r\nhost: t\r\ncontent-length: 50\r\n\r\n{\"de")
        .expect("send partial body");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read 408");
    assert!(out.starts_with("HTTP/1.1 408 "), "{out}");
    assert!(out.contains("body"), "408 names the stalled phase:\n{out}");
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_close_silently() {
    let (handle, addr) = start(ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Serve one request so the connection is established and idle
    // (not mid-request — idle closes are silent, stalls answer 408).
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let mut buf = [0u8; 65536];
    let n = stream.read(&mut buf).expect("read healthz");
    assert!(String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200 "));
    // Now idle past the timeout: the server closes with no bytes.
    let n = stream.read(&mut buf).expect("read close");
    assert_eq!(n, 0, "idle close must be silent (got {n} bytes)");
    handle.shutdown();
}
