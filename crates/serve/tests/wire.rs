//! Wire-layer integration tests: a real server on an ephemeral loopback
//! port, driven over real sockets. Pins the ISSUE-2 service guarantees:
//! malformed input answers 4xx (never a panic or a hang), N concurrent
//! identical requests trigger exactly one simulation, and a
//! snapshot/restore cycle serves bit-identical reports from cache.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mcdla_serve::client::{request_once, Connection};
use mcdla_serve::{ServeConfig, Server, ServerHandle};

/// Starts a server on an ephemeral port, returning its handle and
/// `host:port` string.
fn start(config: ServeConfig) -> (ServerHandle, String) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral server");
    let handle = server.spawn().expect("spawn event loop");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// A unique scratch directory per test (no wall-clock available: use
/// pid + a process-global counter).
fn scratch_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mcdla-wire-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const CELL: &str = r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel"}"#;

/// Sends raw bytes and returns the full response text (read to EOF).
fn raw_roundtrip(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send");
    // Half-close so a server waiting for more body sees truncation.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn healthz_stats_and_keep_alive() {
    let (handle, addr) = start(ServeConfig::default());
    // One persistent connection serves many requests.
    let mut conn = Connection::open(&addr).expect("open");
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));
    let stats = conn.request("GET", "/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    for key in ["hits", "misses", "evictions", "dedup_waits", "in_flight"] {
        assert!(
            stats.body.contains(key),
            "stats missing `{key}`: {}",
            stats.body
        );
    }
    handle.shutdown();
}

#[test]
fn served_reports_are_bit_identical_to_the_batch_runner() {
    let (handle, addr) = start(ServeConfig::default());
    let scenario: mcdla_core::Scenario = serde::json::from_str(CELL).unwrap();
    let batch = serde::json::to_string(&scenario.simulate());

    let served = request_once(&addr, "POST", "/simulate", Some(CELL)).unwrap();
    assert_eq!(served.status, 200);
    let parsed = serde::json::parse(&served.body).unwrap();
    assert_eq!(
        serde::json::to_string(parsed.get("report").expect("report field")),
        batch,
        "served report differs from the batch runner's"
    );
    assert_eq!(parsed.get("cached"), Some(&serde::Value::Bool(false)));

    // Second request: cached, same report.
    let again = request_once(&addr, "POST", "/simulate", Some(CELL)).unwrap();
    let parsed = serde::json::parse(&again.body).unwrap();
    assert_eq!(parsed.get("cached"), Some(&serde::Value::Bool(true)));
    assert_eq!(serde::json::to_string(parsed.get("report").unwrap()), batch);
    handle.shutdown();
}

#[test]
fn grid_answers_match_simulate_cell_by_cell() {
    let (handle, addr) = start(ServeConfig::default());
    let body = r#"{"designs":["DcDla","McDlaBwAware"],"benchmarks":["AlexNet"]}"#;
    let grid = request_once(&addr, "POST", "/grid", Some(body)).unwrap();
    assert_eq!(grid.status, 200);
    let parsed = serde::json::parse(&grid.body).unwrap();
    assert_eq!(parsed.get("count").and_then(|v| v.as_u64()), Some(4));
    let cells = parsed.get("cells").and_then(|v| v.as_seq()).unwrap();
    assert_eq!(cells.len(), 4);
    // Every grid cell answers /simulate with the identical report (from
    // cache now — the store is shared between endpoints).
    for cell in cells {
        let scenario = serde::json::to_string(cell.get("scenario").unwrap());
        let single = request_once(&addr, "POST", "/simulate", Some(&scenario)).unwrap();
        let single = serde::json::parse(&single.body).unwrap();
        assert_eq!(single.get("cached"), Some(&serde::Value::Bool(true)));
        assert_eq!(
            serde::json::to_string(single.get("report").unwrap()),
            serde::json::to_string(cell.get("report").unwrap()),
        );
    }
    handle.shutdown();
}

#[test]
fn malformed_requests_answer_4xx_not_panic() {
    let (handle, addr) = start(ServeConfig::default());

    // Garbage instead of HTTP.
    let resp = raw_roundtrip(&addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // Truncated head.
    let resp = raw_roundtrip(&addr, b"POST /simulate HTT");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // Truncated body (content-length promises more than arrives).
    let resp = raw_roundtrip(
        &addr,
        b"POST /simulate HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"partial\":",
    );
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    assert!(resp.contains("truncated"), "{resp}");

    // Chunked bodies are politely unsupported.
    let resp = raw_roundtrip(
        &addr,
        b"POST /simulate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501 "), "{resp}");

    // The server survived all of it.
    assert_eq!(
        request_once(&addr, "GET", "/healthz", None).unwrap().status,
        200
    );
    handle.shutdown();
}

#[test]
fn bad_bodies_and_bad_routes_answer_4xx() {
    let (handle, addr) = start(ServeConfig::default());

    // Invalid JSON.
    let resp = request_once(&addr, "POST", "/simulate", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("error"), "{}", resp.body);

    // Valid JSON, not a scenario object at all.
    let resp = request_once(&addr, "POST", "/simulate", Some("[1, 2]")).unwrap();
    assert_eq!(resp.status, 400);

    // An object with an unknown key: with every field optional, this
    // must be a 400 naming the key — not a 200 for the default cell.
    let resp = request_once(&addr, "POST", "/simulate", Some("{\"x\": 1}")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.body.contains("unknown Scenario field `x`"),
        "{}",
        resp.body
    );

    // Valid scenario shape, hostile knobs: must be a 400, not a panic.
    for hostile in [
        r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel","devices":0}"#,
        r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel","batch":0}"#,
        r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel",
            "overrides":{"compression":0.5}}"#,
    ] {
        let resp = request_once(&addr, "POST", "/simulate", Some(hostile)).unwrap();
        assert_eq!(resp.status, 400, "hostile body accepted: {hostile}");
    }

    // Unknown endpoint and wrong methods.
    assert_eq!(
        request_once(&addr, "GET", "/nope", None).unwrap().status,
        404
    );
    assert_eq!(
        request_once(&addr, "GET", "/simulate", None)
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        request_once(&addr, "POST", "/healthz", None)
            .unwrap()
            .status,
        405
    );

    // A bad grid: zero batch in the axis.
    let resp = request_once(&addr, "POST", "/grid", Some(r#"{"batches":[0]}"#)).unwrap();
    assert_eq!(resp.status, 400);

    // Still healthy.
    assert_eq!(
        request_once(&addr, "GET", "/healthz", None).unwrap().status,
        200
    );
    handle.shutdown();
}

#[test]
fn streamed_grid_cells_are_byte_identical_to_batch_cells() {
    // Two fresh servers (cold stores) answer the same grid request, one
    // buffered, one streamed: every cell payload must match byte for
    // byte (streams arrive in completion order, so pair by digest).
    let body = r#"{"designs":["DcDla","McDlaBwAware"],"benchmarks":["AlexNet"],
                   "devices":[8,16]}"#;

    let (batch_handle, batch_addr) = start(ServeConfig::default());
    let batch = request_once(&batch_addr, "POST", "/grid", Some(body)).unwrap();
    assert_eq!(batch.status, 200);
    let parsed = serde::json::parse(&batch.body).unwrap();
    let cells = parsed.get("cells").and_then(|v| v.as_seq()).unwrap();
    let batch_by_digest: std::collections::HashMap<String, String> = cells
        .iter()
        .map(|c| {
            (
                c.get("digest").unwrap().as_str().unwrap().to_owned(),
                serde::json::to_string(c),
            )
        })
        .collect();
    batch_handle.shutdown();

    let (handle, addr) = start(ServeConfig::default());
    let mut conn = Connection::open(&addr).expect("open");
    let stream = conn
        .request_stream("POST", "/grid?stream=1", Some(body))
        .expect("stream");
    assert_eq!(stream.status, 200);
    let lines = stream.collect_lines().expect("clean terminal chunk");
    assert_eq!(lines.len(), batch_by_digest.len());
    for line in &lines {
        let cell = serde::json::parse(line).expect("valid JSON per line");
        let digest = cell.get("digest").unwrap().as_str().unwrap();
        assert_eq!(
            Some(line),
            batch_by_digest.get(digest),
            "streamed cell differs from the batch cell for digest {digest}"
        );
    }
    // The keep-alive connection survives the stream: next request works.
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    handle.shutdown();
}

#[test]
fn abandoning_a_stream_mid_read_keeps_the_connection_framed() {
    let (handle, addr) = start(ServeConfig::default());
    let mut conn = Connection::open(&addr).expect("open");
    {
        let mut stream = conn
            .request_stream(
                "POST",
                "/grid?stream=1",
                Some(r#"{"benchmarks":["AlexNet"]}"#),
            )
            .expect("stream");
        assert_eq!(stream.status, 200);
        // Read one of the 12 cells, then drop the stream early: the
        // drop must drain the remaining chunks so the connection stays
        // on a frame boundary.
        let first = stream.next_line().expect("first cell").expect("valid");
        serde::json::parse(&first).expect("cell is JSON");
    }
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200, "connection desynced after early drop");
    let again = conn
        .request_stream(
            "POST",
            "/grid?stream=1",
            Some(r#"{"benchmarks":["AlexNet"]}"#),
        )
        .expect("second stream on the same connection");
    assert_eq!(again.collect_lines().expect("clean").len(), 12);
    handle.shutdown();
}

#[test]
fn stream_rejections_are_buffered_400s() {
    let (handle, addr) = start(ServeConfig::default());
    let mut conn = Connection::open(&addr).expect("open");
    for (bad, why) in [
        ("{not json", "malformed JSON"),
        (r#"{"batches":[0]}"#, "zero batch"),
        (r#"{"designs":[]}"#, "empty axis"),
        // Individually valid knobs, nonsensical together: DP batch 64
        // cannot cover 256 devices. Must be a 400, not a 500/panic.
        (
            r#"{"strategies":["DataParallel"],"devices":[256],"batches":[64]}"#,
            "batch smaller than device count",
        ),
    ] {
        let mut resp = conn
            .request_stream("POST", "/grid?stream=1", Some(bad))
            .expect("request");
        assert_eq!(resp.status, 400, "{why} must answer 400");
        let line = resp.next_line().expect("error body").expect("readable");
        assert!(line.contains("error"), "{why}: {line}");
    }
    // Same combination through /simulate: 400, not a worker-planner panic.
    let combo = r#"{"design":"DcDla","benchmark":"AlexNet","strategy":"DataParallel",
                    "devices":256,"batch":64}"#;
    let resp = request_once(&addr, "POST", "/simulate", Some(combo)).unwrap();
    assert_eq!(resp.status, 400);
    // The server survived all of it.
    assert_eq!(
        request_once(&addr, "GET", "/healthz", None).unwrap().status,
        200
    );
    handle.shutdown();
}

#[test]
fn truncated_stream_client_does_not_kill_the_server() {
    let (handle, addr) = start(ServeConfig::default());
    // A client that requests a stream, reads a little, and vanishes: the
    // server must cancel the remaining cells and carry on, not panic or
    // leak its acceptor thread.
    let body = r#"{"benchmarks":["AlexNet"]}"#;
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let head = format!(
            "POST /grid?stream=1 HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(head.as_bytes()).expect("send");
        let mut first = [0u8; 64];
        let n = stream.read(&mut first).expect("read some of the stream");
        assert!(n > 0, "server never started answering");
        assert!(first.starts_with(b"HTTP/1.1 200"));
        // Drop without reading the rest.
    }
    // The pool still answers (repeatedly, to hit the same acceptor).
    for _ in 0..4 {
        assert_eq!(
            request_once(&addr, "GET", "/healthz", None).unwrap().status,
            200
        );
    }
    handle.shutdown();
}

#[test]
fn n_concurrent_identical_requests_simulate_once() {
    let (handle, addr) = start(ServeConfig {
        threads: 8,
        ..ServeConfig::default()
    });
    // A heavier cell so the flight stays open long enough to coalesce.
    let body = r#"{"design":"McDlaBwAware","benchmark":"VggE","strategy":"DataParallel"}"#;
    let n = 8;
    std::thread::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|| {
                let resp = request_once(&addr, "POST", "/simulate", Some(body)).unwrap();
                assert_eq!(resp.status, 200);
            });
        }
    });
    let stats = handle.store().stats();
    assert_eq!(
        stats.misses, 1,
        "{n} concurrent identical requests must simulate exactly once (stats: {stats:?})"
    );
    assert_eq!(stats.hits, (n - 1) as u64);
    handle.shutdown();
}

#[test]
fn snapshot_restart_serves_warm_bit_identical_reports() {
    let dir = scratch_dir();
    let snapshot = dir.join("store.json");

    // Cold server: simulate one cell, which persists the snapshot.
    let (handle, addr) = start(ServeConfig {
        snapshot: Some(snapshot.clone()),
        ..ServeConfig::default()
    });
    let cold = request_once(&addr, "POST", "/simulate", Some(CELL)).unwrap();
    assert_eq!(cold.status, 200);
    let cold = serde::json::parse(&cold.body).unwrap();
    assert_eq!(cold.get("cached"), Some(&serde::Value::Bool(false)));
    handle.shutdown();
    assert!(snapshot.exists(), "shutdown must leave a snapshot behind");

    // Restarted server: the very first request is a warm hit with a
    // bit-identical report.
    let (handle, addr) = start(ServeConfig {
        snapshot: Some(snapshot.clone()),
        ..ServeConfig::default()
    });
    assert!(handle.store().warm_loaded() > 0, "store did not warm-load");
    let warm = request_once(&addr, "POST", "/simulate", Some(CELL)).unwrap();
    assert_eq!(warm.status, 200);
    let warm = serde::json::parse(&warm.body).unwrap();
    assert_eq!(warm.get("cached"), Some(&serde::Value::Bool(true)));
    assert_eq!(
        serde::json::to_string(warm.get("report").unwrap()),
        serde::json::to_string(cold.get("report").unwrap()),
        "cold and warm reports must be bit-identical"
    );
    let stats = handle.store().stats();
    assert!(stats.hits > 0, "first post-restart request must be a hit");
    assert_eq!(stats.misses, 0, "warm restart must not re-simulate");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_server_store_evicts_lru() {
    let (handle, addr) = start(ServeConfig {
        cache_cap: Some(16),
        ..ServeConfig::default()
    });
    // More distinct cells than the cap: 2 designs x 8 benchmarks x 2
    // strategies = 32 cells through a 16-cap store.
    let body = r#"{"designs":["DcDla","McDlaBwAware"]}"#;
    let grid = request_once(&addr, "POST", "/grid", Some(body)).unwrap();
    assert_eq!(grid.status, 200);
    let stats = handle.store().stats();
    assert!(stats.evictions > 0, "no evictions at cap 16: {stats:?}");
    assert!(stats.entries <= 16, "store grew past its bound: {stats:?}");
    handle.shutdown();
}

#[test]
fn bounded_server_store_holds_a_bound_below_the_shard_count() {
    // Capacity 3 against the default 16 shards: the per-shard-quota
    // scheme this PR replaced would have retained up to 16 entries.
    let (handle, addr) = start(ServeConfig {
        cache_cap: Some(3),
        ..ServeConfig::default()
    });
    let body = r#"{"designs":["DcDla","McDlaBwAware"],"benchmarks":["AlexNet","GoogLeNet"]}"#;
    let grid = request_once(&addr, "POST", "/grid", Some(body)).unwrap();
    assert_eq!(grid.status, 200);
    let stats = handle.store().stats();
    assert_eq!(
        stats.entries, 3,
        "global bound must hold exactly: {stats:?}"
    );
    assert_eq!(stats.evictions, 5, "8 cells - 3 resident: {stats:?}");
    handle.shutdown();
}

#[test]
fn sparse_scenarios_and_paper_label_aliases_are_accepted() {
    let (handle, addr) = start(ServeConfig::default());

    // The exact body the old code rejected with "missing field `strategy`".
    let sparse = r#"{"benchmark":"AlexNet","design":"McDlaBwAware"}"#;
    let resp = request_once(&addr, "POST", "/simulate", Some(sparse)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = serde::json::parse(&resp.body).unwrap();
    let scenario = parsed.get("scenario").expect("scenario echoed");
    assert_eq!(
        scenario.get("strategy").and_then(|v| v.as_str()),
        Some("DataParallel"),
        "omitted strategy defaults to the paper's data-parallel"
    );

    // An empty body is the fully-defaulted headline cell.
    let resp = request_once(&addr, "POST", "/simulate", Some("{}")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = serde::json::parse(&resp.body).unwrap();
    assert_eq!(
        parsed
            .get("scenario")
            .and_then(|s| s.get("design"))
            .and_then(|v| v.as_str()),
        Some("McDlaBwAware")
    );

    // Paper labels, any case, key the same cache cell as wire names.
    let aliased = r#"{"design":"mc-dla(b)","benchmark":"AlexNet","strategy":"data-parallel"}"#;
    let resp = request_once(&addr, "POST", "/simulate", Some(aliased)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = serde::json::parse(&resp.body).unwrap();
    assert_eq!(
        parsed.get("cached"),
        Some(&serde::Value::Bool(true)),
        "the alias must hit the cell the sparse request computed"
    );
    handle.shutdown();
}

#[test]
fn unknown_enum_errors_enumerate_the_accepted_variants() {
    let (handle, addr) = start(ServeConfig::default());
    let resp = request_once(
        &addr,
        "POST",
        "/simulate",
        Some(r#"{"design":"mcdla","benchmark":"AlexNet","strategy":"DataParallel"}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    for expected in ["unknown SystemDesign `mcdla`", "McDlaBwAware", "MC-DLA(B)"] {
        assert!(resp.body.contains(expected), "{}", resp.body);
    }
    // Same guidance on grid axes.
    let resp = request_once(&addr, "POST", "/grid", Some(r#"{"strategies":["dp"]}"#)).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("DataParallel"), "{}", resp.body);
    assert!(resp.body.contains("data-parallel"), "{}", resp.body);
    handle.shutdown();
}

#[test]
fn stats_surface_per_shard_occupancy_and_hit_rate() {
    let (handle, addr) = start(ServeConfig::default());
    let _ = request_once(&addr, "POST", "/simulate", Some(CELL)).unwrap();
    let _ = request_once(&addr, "POST", "/simulate", Some(CELL)).unwrap();
    let stats = request_once(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    for key in ["hit_rate", "shards", "shard_entries", "shard_imbalance"] {
        assert!(
            stats.body.contains(key),
            "stats missing `{key}`: {}",
            stats.body
        );
    }
    let parsed = serde::json::parse(&stats.body).unwrap();
    let store = parsed.get("store").expect("store stats");
    let shard_entries = store
        .get("shard_entries")
        .and_then(|v| v.as_seq())
        .expect("per-shard occupancy list");
    assert_eq!(
        shard_entries
            .iter()
            .map(|v| v.as_u64().unwrap())
            .sum::<u64>(),
        store.get("entries").and_then(|v| v.as_u64()).unwrap(),
        "per-shard occupancy must sum to the entry count"
    );
    assert_eq!(store.get("hit_rate").and_then(|v| v.as_f64()), Some(0.5));
    handle.shutdown();
}

#[test]
fn oversized_snapshots_are_compacted_into_a_bounded_restart() {
    let dir = scratch_dir();
    let snapshot = dir.join("store.json");

    // An unbounded server computes 4 cells and snapshots them all.
    let (handle, addr) = start(ServeConfig {
        snapshot: Some(snapshot.clone()),
        ..ServeConfig::default()
    });
    let body = r#"{"designs":["DcDla","McDlaBwAware"],"benchmarks":["AlexNet"]}"#;
    assert_eq!(
        request_once(&addr, "POST", "/grid", Some(body))
            .unwrap()
            .status,
        200
    );
    handle.shutdown();
    let full = std::fs::read_to_string(&snapshot).unwrap();
    assert!(full.matches("\"scenario\"").count() >= 4);

    // Restarting with a smaller bound restores what fits (evicting
    // oldest-first) and compacts the file down to the bound.
    let (handle, _addr) = start(ServeConfig {
        snapshot: Some(snapshot.clone()),
        cache_cap: Some(2),
        ..ServeConfig::default()
    });
    let stats = handle.store().stats();
    assert_eq!(
        stats.entries, 2,
        "restore must land at the bound: {stats:?}"
    );
    assert!(stats.warm_loaded >= 4);
    let compacted = std::fs::read_to_string(&snapshot).unwrap();
    assert_eq!(
        compacted.matches("\"scenario\"").count(),
        2,
        "the snapshot file must be compacted to the resident cells"
    );
    assert!(compacted.contains("\"capacity\": 2"), "{compacted}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE-10 pin: `X-Mcdla-Request-Id` is echoed on every answer shape —
/// the chunked head of a streamed grid, the 429 shed path, and the 408
/// stalled-request path — so log correlation survives exactly the
/// requests most worth correlating.
#[test]
fn request_id_echoes_on_stream_heads_and_shed_paths() {
    // Streamed grid: the propagated id must ride the chunked head.
    let (handle, addr) = start(ServeConfig::default());
    let body = r#"{"designs":["DcDla"],"benchmarks":["AlexNet"],"strategies":["DataParallel"]}"#;
    let request = format!(
        "POST /grid?stream=1 HTTP/1.1\r\nhost: t\r\nx-mcdla-request-id: stream-rid-7\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let out = raw_roundtrip(&addr, request.as_bytes());
    assert!(out.starts_with("HTTP/1.1 200 "), "{out}");
    let head = out.split("\r\n\r\n").next().unwrap().to_ascii_lowercase();
    assert!(
        head.contains("x-mcdla-request-id: stream-rid-7"),
        "streamed head must echo the propagated id:\n{out}"
    );
    assert!(
        head.contains("transfer-encoding: chunked"),
        "the echo must be on the *streamed* head:\n{out}"
    );
    handle.shutdown();

    // Shed path: 1 pool worker + 1 queue slot, a burst of distinct
    // heavy grids each carrying its own id. Every 429 must echo the id
    // of the request it rejects.
    let (handle, addr) = start(ServeConfig {
        threads: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let answers: Vec<(u16, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let lo = 40_000 + i as u64 * 1_000;
                    let batches: Vec<String> = (lo..lo + 200).map(|b| b.to_string()).collect();
                    let body = format!(
                        r#"{{"designs":["DcDla"],"benchmarks":["AlexNet"],"strategies":["DataParallel"],"batches":[{}]}}"#,
                        batches.join(",")
                    );
                    let rid = format!("shed-rid-{i}");
                    let request = format!(
                        "POST /grid HTTP/1.1\r\nhost: t\r\nx-mcdla-request-id: {rid}\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let out = raw_roundtrip(&addr, request.as_bytes());
                    let status: u16 = out
                        .split(' ')
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    (status, rid, out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed: Vec<_> = answers.iter().filter(|(s, ..)| *s == 429).collect();
    assert!(
        !shed.is_empty(),
        "a burst of 8 against 1 worker + 1 queue slot must shed; statuses: {:?}",
        answers.iter().map(|(s, ..)| *s).collect::<Vec<_>>()
    );
    for (_, rid, out) in &shed {
        assert!(
            out.to_ascii_lowercase()
                .contains(&format!("x-mcdla-request-id: {rid}")),
            "429 must echo the shed request's own id {rid}:\n{out}"
        );
    }
    handle.shutdown();

    // Stalled request: the 408 arrives before any id could propagate,
    // so the server mints one — but the header must still be there.
    let (handle, addr) = start(ServeConfig {
        request_timeout: std::time::Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /healthz HTT").expect("send partial");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read 408");
    assert!(out.starts_with("HTTP/1.1 408 "), "{out}");
    assert!(
        out.to_ascii_lowercase().contains("x-mcdla-request-id: "),
        "408 must carry a (minted) request id:\n{out}"
    );
    handle.shutdown();
}
