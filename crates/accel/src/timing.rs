//! Per-layer timing model for the device-node.
//!
//! The paper (§IV) argues that DNN accelerators are well modeled without
//! cycle-level DRAM simulation because (1) dataflow is deterministic and
//! orchestrated in coarse granularity, and (2) all inter-node transfers are
//! bulk DMAs. Accordingly, each layer is timed with an output-stationary
//! roofline:
//!
//! ```text
//! t_layer = max(MACs / (peak_macs x occupancy x sustained_eff),
//!               bytes_touched / HBM_bandwidth)
//!           + memory_latency
//! ```
//!
//! The occupancy term models the spatial array running underfilled when a
//! layer exposes fewer output elements than the array has MAC lanes (small
//! GEMVs at low batch — the reason recurrent layers are bandwidth-limited in
//! §V-A).

use mcdla_dnn::{DataType, Layer, Network};
use mcdla_sim::SimDuration;

use crate::config::DeviceConfig;

/// Forward/backward execution times of one layer.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct LayerTiming {
    /// Forward-propagation time.
    pub forward: SimDuration,
    /// Backward-propagation time (dX + dW computation).
    pub backward: SimDuration,
}

impl LayerTiming {
    /// Sum of forward and backward time.
    pub fn total(&self) -> SimDuration {
        self.forward + self.backward
    }
}

/// Timing model of one accelerator device (Table II configuration).
///
/// # Examples
///
/// ```
/// use mcdla_accel::{AccelTimingModel, DeviceConfig};
/// use mcdla_dnn::{Benchmark, DataType};
///
/// let model = AccelTimingModel::new(DeviceConfig::paper_baseline(), DataType::F32);
/// let net = Benchmark::AlexNet.build();
/// let t = model.network_timing(&net, 64);
/// // Backward is roughly twice forward for GEMM-dominated networks.
/// let f = t.iter().map(|lt| lt.forward.as_secs_f64()).sum::<f64>();
/// let b = t.iter().map(|lt| lt.backward.as_secs_f64()).sum::<f64>();
/// assert!(b > 1.5 * f && b < 2.5 * f);
/// ```
#[derive(Debug, Clone)]
pub struct AccelTimingModel {
    config: DeviceConfig,
    dtype: DataType,
}

impl AccelTimingModel {
    /// Creates a timing model for a device and element precision.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DeviceConfig::validate`].
    pub fn new(config: DeviceConfig, dtype: DataType) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid device config: {e}");
        }
        AccelTimingModel { config, dtype }
    }

    /// The underlying device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Element precision assumed for all tensors.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Occupancy of the output-stationary array for a layer at a batch size:
    /// the fraction of MAC lanes that find an output element to work on.
    pub fn occupancy(&self, layer: &Layer, batch: u64) -> f64 {
        let outputs = layer.output_shape().elements().saturating_mul(batch);
        let lanes = self.config.mac_lanes();
        if outputs == 0 {
            return 1.0;
        }
        (outputs as f64 / lanes as f64).min(1.0)
    }

    fn gemm_time(&self, macs: u64, bytes: u64, occupancy: f64) -> SimDuration {
        let peak = self.config.peak_macs_per_sec() as f64
            * occupancy.max(MIN_OCCUPANCY)
            * self.config.sustained_efficiency;
        let t_compute = macs as f64 / peak;
        let t_memory = bytes as f64 / (self.config.memory_bandwidth_gbs * 1e9);
        SimDuration::from_secs_f64(t_compute.max(t_memory) + self.config.memory_latency_secs())
    }

    /// Forward-pass time of one layer for a batch.
    pub fn forward_time(&self, layer: &Layer, batch: u64) -> SimDuration {
        self.gemm_time(
            layer.forward_macs(batch),
            layer.forward_bytes_touched(batch, self.dtype),
            self.occupancy(layer, batch),
        )
    }

    /// Backward-pass time of one layer for a batch (dX and dW GEMMs).
    pub fn backward_time(&self, layer: &Layer, batch: u64) -> SimDuration {
        self.gemm_time(
            layer.backward_macs(batch),
            layer.backward_bytes_touched(batch, self.dtype),
            self.occupancy(layer, batch),
        )
    }

    /// Recompute cost of a cheap layer during backpropagation — its forward
    /// time again (the MXNet-style optimization of footnote 4 trades this
    /// for a round-trip to the backing store).
    pub fn recompute_time(&self, layer: &Layer, batch: u64) -> SimDuration {
        self.forward_time(layer, batch)
    }

    /// Timings for every layer of `network` at a batch size, in topological
    /// order.
    pub fn network_timing(&self, network: &Network, batch: u64) -> Vec<LayerTiming> {
        network
            .layers()
            .iter()
            .map(|l| LayerTiming {
                forward: self.forward_time(l, batch),
                backward: self.backward_time(l, batch),
            })
            .collect()
    }

    /// Total compute time of one training iteration (forward + backward over
    /// all layers), excluding communication and memory virtualization.
    pub fn iteration_compute_time(&self, network: &Network, batch: u64) -> SimDuration {
        self.network_timing(network, batch)
            .iter()
            .map(LayerTiming::total)
            .sum()
    }
}

/// Floor on occupancy so degenerate layers don't produce infinite time.
const MIN_OCCUPANCY: f64 = 1.0 / 4096.0;

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_dnn::Benchmark;

    fn model() -> AccelTimingModel {
        AccelTimingModel::new(DeviceConfig::paper_baseline(), DataType::F32)
    }

    #[test]
    fn compute_time_scales_with_batch() {
        let m = model();
        let net = Benchmark::VggE.build();
        let t64 = m.iteration_compute_time(&net, 64).as_secs_f64();
        let t128 = m.iteration_compute_time(&net, 128).as_secs_f64();
        assert!(t128 > 1.8 * t64 && t128 < 2.2 * t64, "{t64} vs {t128}");
    }

    #[test]
    fn faster_device_is_faster() {
        let base = model();
        let fast = AccelTimingModel::new(DeviceConfig::tpu_v2_like(), DataType::F32);
        let net = Benchmark::ResNet.build();
        assert!(fast.iteration_compute_time(&net, 64) < base.iteration_compute_time(&net, 64));
    }

    #[test]
    fn conv_layers_are_compute_bound_fc_layers_memory_bound_at_batch_1() {
        // §V-A: convolutional layers have high locality (compute-limited);
        // fully-connected layers are bandwidth-limited at small batch.
        let m = model();
        let net = Benchmark::AlexNet.build();
        // conv3 has high arithmetic intensity (3x3 over 256 channels);
        // conv1's stride-4 sliding window is closer to the roofline ridge.
        let conv3 = net.layers().iter().find(|l| l.name() == "conv3").unwrap();
        let fc6 = net.layers().iter().find(|l| l.name() == "fc6").unwrap();

        let peak = m.config().peak_macs_per_sec() as f64;
        let bw = m.config().memory_bandwidth_gbs * 1e9;
        // conv3 at batch 64: compute term dominates.
        let c_comp = conv3.forward_macs(64) as f64 / peak;
        let c_mem = conv3.forward_bytes_touched(64, DataType::F32) as f64 / bw;
        assert!(
            c_comp > c_mem,
            "conv should be compute bound: {c_comp} {c_mem}"
        );
        // fc6 at batch 1: memory term dominates (reads 38M weights for 9k
        // activations).
        let f_comp = fc6.forward_macs(1) as f64 / peak;
        let f_mem = fc6.forward_bytes_touched(1, DataType::F32) as f64 / bw;
        assert!(
            f_mem > f_comp,
            "fc should be memory bound: {f_comp} {f_mem}"
        );
    }

    #[test]
    fn occupancy_penalizes_small_layers() {
        let m = model();
        let net = Benchmark::RnnLstm1.build(); // h=512
        let cell = &net.layers()[1];
        // 512 outputs x batch 8 = 4096 << 128K lanes.
        assert!(m.occupancy(cell, 8) < 0.05);
        assert!((m.occupancy(cell, 1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_layer_costs_at_least_the_memory_latency() {
        let m = model();
        let net = Benchmark::GoogLeNet.build();
        let lat = SimDuration::from_secs_f64(m.config().memory_latency_secs());
        for lt in m.network_timing(&net, 16) {
            assert!(lt.forward >= lat);
            assert!(lt.backward >= lat);
        }
    }

    #[test]
    fn recompute_equals_forward() {
        let m = model();
        let net = Benchmark::AlexNet.build();
        let relu = net.layers().iter().find(|l| l.is_cheap()).unwrap();
        assert_eq!(m.recompute_time(relu, 64), m.forward_time(relu, 64));
    }

    #[test]
    #[should_panic(expected = "invalid device config")]
    fn invalid_config_panics() {
        let mut c = DeviceConfig::paper_baseline();
        c.frequency_ghz = -1.0;
        let _ = AccelTimingModel::new(c, DataType::F32);
    }
}
