//! Device-node configuration (Table II).

use serde::{Deserialize, Serialize};

/// Configuration of one accelerator device-node.
///
/// Field defaults reproduce the paper's Table II: a spatial array of 1024
/// processing elements with 125 MAC operators each at 1 GHz, 32 KB
/// double-buffered SRAM per PE, 900 GB/s of on-package HBM at 100 cycles
/// latency, and six 25 GB/s high-bandwidth links.
///
/// # Examples
///
/// ```
/// use mcdla_accel::DeviceConfig;
///
/// let dev = DeviceConfig::paper_baseline();
/// assert_eq!(dev.pe_count, 1024);
/// // 1024 PEs x 125 MACs x 1 GHz = 128 TMAC/s peak.
/// assert_eq!(dev.peak_macs_per_sec(), 128_000_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing-style name used in reports.
    pub name: String,
    /// Number of processing elements in the spatial array.
    pub pe_count: u64,
    /// MAC operators per PE.
    pub macs_per_pe: u64,
    /// PE operating frequency in GHz.
    pub frequency_ghz: f64,
    /// Local SRAM buffer per PE in bytes (double-buffered to overlap compute
    /// with data fetches).
    pub sram_per_pe_bytes: u64,
    /// On-package (HBM) memory bandwidth in GB/s.
    pub memory_bandwidth_gbs: f64,
    /// Memory access latency in PE cycles.
    pub memory_latency_cycles: u64,
    /// Device-local memory capacity in bytes (not part of Table II; defaults
    /// to a Volta-class 16 GiB).
    pub memory_capacity_bytes: u64,
    /// Number of high-bandwidth links (Table II's N).
    pub link_count: usize,
    /// Uni-directional bandwidth per high-bandwidth link in GB/s (Table
    /// II's B).
    pub link_bandwidth_gbs: f64,
    /// Sustained fraction of peak MAC throughput achieved on large GEMMs
    /// (dataflow/mapping losses). 1.0 models the idealized array.
    pub sustained_efficiency: f64,
}

impl DeviceConfig {
    /// The Table II baseline device-node.
    pub fn paper_baseline() -> Self {
        DeviceConfig {
            name: "paper-baseline".into(),
            pe_count: 1024,
            macs_per_pe: 125,
            frequency_ghz: 1.0,
            sram_per_pe_bytes: 32 * 1024,
            memory_bandwidth_gbs: 900.0,
            memory_latency_cycles: 100,
            memory_capacity_bytes: 16 * (1 << 30),
            link_count: 6,
            link_bandwidth_gbs: 25.0,
            sustained_efficiency: 1.0,
        }
    }

    /// A faster device-node, standing in for the §V-B "faster device-node
    /// configuration such as TPUv2" sensitivity study (~1.8x the baseline
    /// compute with higher-bandwidth memory).
    pub fn tpu_v2_like() -> Self {
        DeviceConfig {
            name: "tpuv2-like".into(),
            pe_count: 1024,
            macs_per_pe: 225,
            frequency_ghz: 1.0,
            memory_bandwidth_gbs: 2400.0,
            ..DeviceConfig::paper_baseline()
        }
    }

    /// A scaled-up node configuration, standing in for the §V-B "DGX-2"
    /// study (2 PFLOPS node compute and 2.4 TB/s of device-side interconnect
    /// bandwidth: per-device compute and link bandwidth both doubled).
    pub fn dgx2_like() -> Self {
        DeviceConfig {
            name: "dgx2-like".into(),
            pe_count: 2048,
            link_bandwidth_gbs: 50.0,
            ..DeviceConfig::paper_baseline()
        }
    }

    /// Peak MAC throughput: `pe_count x macs_per_pe x frequency`.
    pub fn peak_macs_per_sec(&self) -> u64 {
        (self.pe_count as f64 * self.macs_per_pe as f64 * self.frequency_ghz * 1e9).round() as u64
    }

    /// MAC lanes available per cycle (`pe_count x macs_per_pe`) — the
    /// output-stationary array's parallel width.
    pub fn mac_lanes(&self) -> u64 {
        self.pe_count * self.macs_per_pe
    }

    /// Memory access latency in seconds.
    pub fn memory_latency_secs(&self) -> f64 {
        self.memory_latency_cycles as f64 / (self.frequency_ghz * 1e9)
    }

    /// Aggregate uni-directional high-bandwidth link throughput in GB/s
    /// (N x B; 150 GB/s for the Table II baseline).
    pub fn aggregate_link_bandwidth_gbs(&self) -> f64 {
        self.link_count as f64 * self.link_bandwidth_gbs
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.pe_count == 0 || self.macs_per_pe == 0 {
            return Err("PE array must have non-zero dimensions".into());
        }
        if self.frequency_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.memory_bandwidth_gbs <= 0.0 {
            return Err("memory bandwidth must be positive".into());
        }
        if self.link_count == 0 || self.link_bandwidth_gbs <= 0.0 {
            return Err("device must have high-bandwidth links".into());
        }
        if !(self.sustained_efficiency > 0.0 && self.sustained_efficiency <= 1.0) {
            return Err("sustained_efficiency must be in (0, 1]".into());
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_baseline_values() {
        let d = DeviceConfig::paper_baseline();
        assert_eq!(d.pe_count, 1024);
        assert_eq!(d.macs_per_pe, 125);
        assert_eq!(d.frequency_ghz, 1.0);
        assert_eq!(d.sram_per_pe_bytes, 32 * 1024);
        assert_eq!(d.memory_bandwidth_gbs, 900.0);
        assert_eq!(d.memory_latency_cycles, 100);
        assert_eq!(d.link_count, 6);
        assert_eq!(d.link_bandwidth_gbs, 25.0);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn aggregate_link_bandwidth_is_150() {
        // §III-B: (N/2 rings) x (2 x B) = N x B = 150 GB/s per device.
        let d = DeviceConfig::paper_baseline();
        assert_eq!(d.aggregate_link_bandwidth_gbs(), 150.0);
    }

    #[test]
    fn latency_is_100ns_at_1ghz() {
        let d = DeviceConfig::paper_baseline();
        assert!((d.memory_latency_secs() - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn sensitivity_presets_are_faster() {
        let base = DeviceConfig::paper_baseline();
        assert!(DeviceConfig::tpu_v2_like().peak_macs_per_sec() > base.peak_macs_per_sec());
        let dgx2 = DeviceConfig::dgx2_like();
        assert_eq!(dgx2.peak_macs_per_sec(), 2 * base.peak_macs_per_sec());
        assert_eq!(dgx2.aggregate_link_bandwidth_gbs(), 300.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut d = DeviceConfig::paper_baseline();
        d.pe_count = 0;
        assert!(d.validate().is_err());
        let mut d = DeviceConfig::paper_baseline();
        d.sustained_efficiency = 0.0;
        assert!(d.validate().is_err());
        let mut d = DeviceConfig::paper_baseline();
        d.link_count = 0;
        assert!(d.validate().is_err());
    }
}
