//! # `mcdla-accel` — accelerator device-node timing model
//!
//! The device-node half of §IV's methodology: a spatial-array DL accelerator
//! (Eyeriss/DaDianNao-style, output-stationary dataflow) timed with a
//! roofline model over the Table II configuration. Provides:
//!
//! * [`DeviceConfig`] — Table II parameters plus the §V-B sensitivity
//!   presets ([`DeviceConfig::tpu_v2_like`], [`DeviceConfig::dgx2_like`]);
//! * [`AccelTimingModel`] — per-layer forward/backward times for any
//!   [`mcdla_dnn::Network`];
//! * [`DeviceGeneration`] — the five historical devices of the Figure 2
//!   motivation experiment.
//!
//! # Examples
//!
//! ```
//! use mcdla_accel::{AccelTimingModel, DeviceConfig};
//! use mcdla_dnn::{Benchmark, DataType};
//!
//! let model = AccelTimingModel::new(DeviceConfig::paper_baseline(), DataType::F32);
//! let resnet = Benchmark::ResNet.build();
//! let iter = model.iteration_compute_time(&resnet, 64);
//! // One training iteration of ResNet-34 at batch 64 takes milliseconds on
//! // a 128 TMAC/s device, not seconds.
//! assert!(iter.as_ms_f64() > 1.0 && iter.as_ms_f64() < 1000.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod dataflow;
mod generations;
mod timing;

pub use config::DeviceConfig;
pub use dataflow::Dataflow;
pub use generations::DeviceGeneration;
pub use timing::{AccelTimingModel, LayerTiming};
