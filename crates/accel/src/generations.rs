//! Historical accelerator generations for the Figure 2 motivation study.
//!
//! Figure 2 runs the four CNNs on five successive accelerator generations
//! (Kepler, Maxwell, Pascal, Volta, TPUv2) against a *fixed* PCIe gen3 host
//! interface, showing execution time dropping 20x–34x while the
//! memory-virtualization overhead percentage climbs.
//!
//! The authors' per-generation calibration data is not public, so each
//! generation is characterized by a **sustained** training MAC throughput
//! and memory bandwidth derived from public specifications (fp32 for
//! Kepler/Maxwell, fp16 for Pascal, tensor cores for Volta, MXU for TPUv2).
//! Only the *ratios* matter for reproducing the figure's shape.

use std::fmt;

use serde::Serialize;

use crate::config::DeviceConfig;

/// One of Figure 2's five accelerator generations.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum DeviceGeneration {
    /// NVIDIA Kepler (K40-class), fp32.
    Kepler,
    /// NVIDIA Maxwell (M40-class), fp32.
    Maxwell,
    /// NVIDIA Pascal (P100-class), fp16.
    Pascal,
    /// NVIDIA Volta (V100-class), tensor cores.
    Volta,
    /// Google TPUv2, MXU.
    TpuV2,
}

impl DeviceGeneration {
    /// All generations in Figure 2's left-to-right order.
    pub const ALL: [DeviceGeneration; 5] = [
        DeviceGeneration::Kepler,
        DeviceGeneration::Maxwell,
        DeviceGeneration::Pascal,
        DeviceGeneration::Volta,
        DeviceGeneration::TpuV2,
    ];

    /// The wire (serde) name — the variant identifier the derived
    /// `Serialize` emits.
    pub fn wire_name(self) -> &'static str {
        match self {
            DeviceGeneration::Kepler => "Kepler",
            DeviceGeneration::Maxwell => "Maxwell",
            DeviceGeneration::Pascal => "Pascal",
            DeviceGeneration::Volta => "Volta",
            DeviceGeneration::TpuV2 => "TpuV2",
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceGeneration::Kepler => "Kepler",
            DeviceGeneration::Maxwell => "Maxwell",
            DeviceGeneration::Pascal => "Pascal",
            DeviceGeneration::Volta => "Volta",
            DeviceGeneration::TpuV2 => "TPUv2",
        }
    }

    /// Sustained training throughput in tera-MACs per second.
    pub fn sustained_tmacs(self) -> f64 {
        match self {
            DeviceGeneration::Kepler => 2.1,  // K40 4.3 TFLOPS fp32
            DeviceGeneration::Maxwell => 3.4, // M40 6.8 TFLOPS fp32
            DeviceGeneration::Pascal => 10.6, // P100 21.2 TFLOPS fp16
            DeviceGeneration::Volta => 56.0,  // V100 tensor cores, sustained
            DeviceGeneration::TpuV2 => 64.0,  // TPUv2 MXU, sustained
        }
    }

    /// Device memory bandwidth in GB/s.
    pub fn memory_bandwidth_gbs(self) -> f64 {
        match self {
            DeviceGeneration::Kepler => 288.0,
            DeviceGeneration::Maxwell => 288.0,
            DeviceGeneration::Pascal => 732.0,
            DeviceGeneration::Volta => 900.0,
            DeviceGeneration::TpuV2 => 2400.0,
        }
    }

    /// Device memory capacity in bytes (M40's 12 GB vs V100's 16 GB, as the
    /// paper contrasts in §III-B).
    pub fn memory_capacity_bytes(self) -> u64 {
        match self {
            DeviceGeneration::Kepler | DeviceGeneration::Maxwell => 12 * (1 << 30),
            _ => 16 * (1 << 30),
        }
    }

    /// Builds the effective [`DeviceConfig`] for this generation. The PE
    /// array is expressed as `tmacs x 1000` single-MAC PEs at 1 GHz
    /// (= `tmacs x 1e12` MACs/s); only aggregate throughput matters to the
    /// roofline model.
    pub fn device_config(self) -> DeviceConfig {
        DeviceConfig {
            name: self.name().into(),
            pe_count: (self.sustained_tmacs() * 1000.0).round() as u64,
            macs_per_pe: 1,
            frequency_ghz: 1.0,
            memory_bandwidth_gbs: self.memory_bandwidth_gbs(),
            memory_capacity_bytes: self.memory_capacity_bytes(),
            ..DeviceConfig::paper_baseline()
        }
    }
}

impl fmt::Display for DeviceGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Hand-written (not derived) so wire payloads may use either the wire
// name (`TpuV2`) or the display label (`TPUv2`), in any case, and an
// unknown name answers with the full accepted list.
impl serde::Deserialize for DeviceGeneration {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::expected("string", "DeviceGeneration"))?;
        DeviceGeneration::ALL
            .iter()
            .copied()
            .find(|g| s.eq_ignore_ascii_case(g.wire_name()) || s.eq_ignore_ascii_case(g.name()))
            .ok_or_else(|| {
                let accepted: Vec<&str> = DeviceGeneration::ALL
                    .iter()
                    .map(|g| g.wire_name())
                    .collect();
                serde::Error::custom(format!(
                    "unknown DeviceGeneration `{s}` (accepted, case-insensitive: {})",
                    accepted.join(", ")
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_monotonically_increasing() {
        let t: Vec<f64> = DeviceGeneration::ALL
            .iter()
            .map(|g| g.sustained_tmacs())
            .collect();
        assert!(t.windows(2).all(|w| w[1] > w[0]), "{t:?}");
    }

    #[test]
    fn kepler_to_tpuv2_is_20x_to_34x() {
        // Figure 2's headline: execution time reduced by 20x-34x over five
        // years. Pure compute ratio must land inside (or very near) that
        // band so workload mixes of compute/memory-bound layers land within.
        let ratio =
            DeviceGeneration::TpuV2.sustained_tmacs() / DeviceGeneration::Kepler.sustained_tmacs();
        assert!(
            (20.0..=34.0).contains(&ratio),
            "compute scaling {ratio} outside Fig. 2's 20x-34x"
        );
    }

    #[test]
    fn device_configs_reflect_throughput() {
        for g in DeviceGeneration::ALL {
            let c = g.device_config();
            assert!(c.validate().is_ok());
            let peak_tmacs = c.peak_macs_per_sec() as f64 / 1e12;
            assert!(
                (peak_tmacs - g.sustained_tmacs()).abs() < 1e-3,
                "{g}: {peak_tmacs} vs {}",
                g.sustained_tmacs()
            );
        }
    }

    #[test]
    fn maxwell_has_12gb() {
        assert_eq!(
            DeviceGeneration::Maxwell.memory_capacity_bytes(),
            12 * (1u64 << 30)
        );
        assert_eq!(
            DeviceGeneration::Volta.memory_capacity_bytes(),
            16 * (1u64 << 30)
        );
    }
}
