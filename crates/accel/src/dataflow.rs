//! Spatial-array dataflow alternatives (§IV).
//!
//! The paper's device model "employs the output-stationary dataflow rather
//! than the row-stationary dataflow" after finding it "provides a good
//! balance in terms of MAC utilization and energy-efficiency across all of
//! the layers we evaluate". This module makes that design choice explicit
//! and ablatable: each dataflow determines how often the three GEMM
//! operands are re-fetched from on-package memory given the double-buffered
//! per-PE SRAM, which feeds both the roofline memory term and a DRAM-access
//! energy estimate.
//!
//! Re-fetch factors follow the standard taxonomy (Chen et al., *Eyeriss*):
//! the stationary operand is fetched once; partial sums of non-output-
//! stationary flows make a round trip per reduction tile.

use mcdla_dnn::{DataType, Layer};
use serde::{Deserialize, Serialize};

/// Which operand stays pinned in the PE array's local storage.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Dataflow {
    /// Output feature maps accumulate in place (the paper's choice).
    #[default]
    OutputStationary,
    /// Weights stay pinned; partial sums spill and return.
    WeightStationary,
    /// Eyeriss-style row-stationary compromise.
    RowStationary,
}

impl Dataflow {
    /// All modeled dataflows.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::OutputStationary,
        Dataflow::WeightStationary,
        Dataflow::RowStationary,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataflow::OutputStationary => "output-stationary",
            Dataflow::WeightStationary => "weight-stationary",
            Dataflow::RowStationary => "row-stationary",
        }
    }

    /// `(x, w, y)` on-package-memory re-fetch factors: how many times each
    /// operand's bytes cross the HBM interface per layer evaluation.
    pub fn refetch_factors(self) -> (f64, f64, f64) {
        match self {
            // Outputs accumulate on-chip: every operand moves once.
            Dataflow::OutputStationary => (1.0, 1.0, 1.0),
            // Weights move once, but partial sums round-trip once per
            // input-channel tile (modeled as one extra Y round trip).
            Dataflow::WeightStationary => (1.0, 1.0, 3.0),
            // Row-stationary amortizes across operands: modest extra X
            // traffic, half the WS partial-sum spill.
            Dataflow::RowStationary => (1.5, 1.0, 2.0),
        }
    }

    /// Forward-pass HBM bytes for `layer` at `batch` under this dataflow.
    pub fn forward_bytes(self, layer: &Layer, batch: u64, dtype: DataType) -> u64 {
        let (fx, fw, fy) = self.refetch_factors();
        let x = layer.input_bytes(batch, dtype) as f64;
        let w = layer.weight_bytes(dtype) as f64;
        let y = layer.output_bytes(batch, dtype) as f64;
        (x * fx + w * fw + y * fy).round() as u64
    }

    /// DRAM-access energy of one forward pass in joules, at `pj_per_byte`
    /// (≈ 15 pJ/byte for HBM2-class memory).
    pub fn forward_dram_energy_j(
        self,
        layer: &Layer,
        batch: u64,
        dtype: DataType,
        pj_per_byte: f64,
    ) -> f64 {
        self.forward_bytes(layer, batch, dtype) as f64 * pj_per_byte * 1e-12
    }
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_dnn::Benchmark;

    #[test]
    fn output_stationary_moves_least_for_conv_layers() {
        // §IV's rationale: for the evaluated layers (large Y relative to
        // the SRAM), OS avoids partial-sum spills and minimizes traffic.
        let net = Benchmark::VggE.build();
        for l in net.layers().iter().filter(|l| l.has_weights()) {
            let os = Dataflow::OutputStationary.forward_bytes(l, 64, DataType::F32);
            let ws = Dataflow::WeightStationary.forward_bytes(l, 64, DataType::F32);
            let rs = Dataflow::RowStationary.forward_bytes(l, 64, DataType::F32);
            assert!(os <= ws, "{}: OS {os} > WS {ws}", l.name());
            assert!(os <= rs, "{}: OS {os} > RS {rs}", l.name());
        }
    }

    #[test]
    fn os_matches_layer_bytes_touched() {
        // The accel roofline's forward_bytes_touched *is* the OS traffic.
        let net = Benchmark::AlexNet.build();
        for l in net.layers() {
            assert_eq!(
                Dataflow::OutputStationary.forward_bytes(l, 32, DataType::F32),
                l.forward_bytes_touched(32, DataType::F32),
                "{}",
                l.name()
            );
        }
    }

    #[test]
    fn energy_scales_with_bytes() {
        let net = Benchmark::ResNet.build();
        let l = &net.layers()[1];
        let e1 = Dataflow::OutputStationary.forward_dram_energy_j(l, 64, DataType::F32, 15.0);
        let e2 = Dataflow::WeightStationary.forward_dram_energy_j(l, 64, DataType::F32, 15.0);
        assert!(e2 > e1);
        let bytes = Dataflow::OutputStationary.forward_bytes(l, 64, DataType::F32);
        assert!((e1 - bytes as f64 * 15e-12).abs() < 1e-12);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Dataflow::OutputStationary.to_string(), "output-stationary");
        assert_eq!(Dataflow::ALL.len(), 3);
        assert_eq!(Dataflow::default(), Dataflow::OutputStationary);
    }
}
