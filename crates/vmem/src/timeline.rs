//! Compiling an overlay schedule down to the Table I API.
//!
//! [`compile_overlay_ops`] lowers a [`VirtSchedule`] into the exact
//! `cudaMemcpyAsync` call sequence a DL framework would issue against the
//! MC-DLA runtime — offloads (`LocalToRemote`) in forward trigger order,
//! prefetches (`RemoteToLocal`) in backward order — and replays it through
//! a [`RemoteRuntime`], closing the loop between the compile-time analysis
//! (§II-B) and the driver-level interface (§III-B, Table I).

use mcdla_dnn::LayerId;
use serde::{Deserialize, Serialize};

use crate::api::{MemcpyDirection, RemoteRuntime};
use crate::schedule::{Disposition, VirtSchedule};

/// One lowered overlay operation.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlayOp {
    /// The layer whose stash moves.
    pub layer: LayerId,
    /// Transfer direction (`LocalToRemote` = offload, `RemoteToLocal` =
    /// prefetch).
    pub direction: MemcpyDirection,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// The layer whose completion triggers this op (its last forward
    /// consumer for offloads; the layer itself for prefetches).
    pub trigger: LayerId,
}

/// Lowers `schedule` to the framework's per-iteration `cudaMemcpyAsync`
/// sequence: all offloads in forward trigger order, then all prefetches in
/// reverse layer order.
pub fn compile_overlay_ops(schedule: &VirtSchedule) -> Vec<OverlayOp> {
    let mut ops = Vec::new();
    for group in schedule.offloads_by_trigger() {
        for e in group {
            ops.push(OverlayOp {
                layer: e.layer,
                direction: MemcpyDirection::LocalToRemote,
                bytes: e.stash_bytes,
                trigger: e.offload_after,
            });
        }
    }
    for e in schedule.entries().iter().rev() {
        if e.disposition == Disposition::Offload {
            ops.push(OverlayOp {
                layer: e.layer,
                direction: MemcpyDirection::RemoteToLocal,
                bytes: e.stash_bytes,
                trigger: e.layer,
            });
        }
    }
    ops
}

/// Replays the lowered sequence through a [`RemoteRuntime`]: allocates one
/// remote buffer per offloaded stash, issues every copy, and frees the
/// buffers — verifying the schedule fits the runtime's deviceremote
/// capacity.
///
/// Returns the number of copies issued.
///
/// # Errors
///
/// Propagates [`mcdla_memnode::AllocError`] if the stashes exceed the
/// runtime's remote capacity.
pub fn replay_through_runtime(
    schedule: &VirtSchedule,
    runtime: &mut RemoteRuntime,
) -> Result<usize, mcdla_memnode::AllocError> {
    let ops = compile_overlay_ops(schedule);
    let mut ptrs = std::collections::BTreeMap::new();
    for op in &ops {
        if op.direction == MemcpyDirection::LocalToRemote && !ptrs.contains_key(&op.layer) {
            ptrs.insert(op.layer, runtime.cuda_malloc_remote(op.bytes.max(1))?);
        }
        runtime.cuda_memcpy_async(op.bytes, op.direction);
    }
    for (_, ptr) in ptrs {
        runtime.cuda_free_remote(ptr)?;
    }
    Ok(ops.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::VirtPolicy;
    use mcdla_dnn::{Benchmark, DataType};
    use mcdla_memnode::PagePolicy;

    fn sched(bm: Benchmark) -> VirtSchedule {
        VirtSchedule::analyze(&bm.build(), 64, DataType::F32, VirtPolicy::paper_default())
    }

    #[test]
    fn op_count_is_twice_the_offload_count() {
        for bm in [Benchmark::AlexNet, Benchmark::GoogLeNet, Benchmark::RnnGru] {
            let s = sched(bm);
            let ops = compile_overlay_ops(&s);
            assert_eq!(ops.len(), 2 * s.offload_count(), "{bm}");
            let out: u64 = ops
                .iter()
                .filter(|o| o.direction == MemcpyDirection::LocalToRemote)
                .map(|o| o.bytes)
                .sum();
            assert_eq!(out, s.offload_bytes(), "{bm}");
        }
    }

    #[test]
    fn offloads_precede_prefetches_and_orders_hold() {
        let s = sched(Benchmark::VggE);
        let ops = compile_overlay_ops(&s);
        let first_prefetch = ops
            .iter()
            .position(|o| o.direction == MemcpyDirection::RemoteToLocal)
            .expect("has prefetches");
        assert!(ops[..first_prefetch]
            .iter()
            .all(|o| o.direction == MemcpyDirection::LocalToRemote));
        // Offload triggers are non-decreasing (forward order)...
        let offload_triggers: Vec<usize> = ops[..first_prefetch]
            .iter()
            .map(|o| o.trigger.index())
            .collect();
        assert!(offload_triggers.windows(2).all(|w| w[0] <= w[1]));
        // ...and prefetch triggers are non-increasing (backward order).
        let prefetch_triggers: Vec<usize> = ops[first_prefetch..]
            .iter()
            .map(|o| o.trigger.index())
            .collect();
        assert!(prefetch_triggers.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn every_offload_has_a_matching_prefetch() {
        let s = sched(Benchmark::ResNet);
        let ops = compile_overlay_ops(&s);
        use std::collections::BTreeMap;
        let mut out: BTreeMap<_, u64> = BTreeMap::new();
        let mut back: BTreeMap<_, u64> = BTreeMap::new();
        for o in &ops {
            match o.direction {
                MemcpyDirection::LocalToRemote => *out.entry(o.layer).or_default() += o.bytes,
                MemcpyDirection::RemoteToLocal => *back.entry(o.layer).or_default() += o.bytes,
                _ => panic!("unexpected direction"),
            }
        }
        assert_eq!(out, back);
    }

    #[test]
    fn replay_fits_a_memory_node_half() {
        // Half of one 1.28 TB node easily holds a batch-64 stash set.
        let s = sched(Benchmark::VggE);
        let mut rt = RemoteRuntime::new(640_000_000_000, 640_000_000_000, PagePolicy::BwAware);
        let issued = replay_through_runtime(&s, &mut rt).expect("fits");
        assert_eq!(issued, 2 * s.offload_count());
        assert_eq!(rt.live_allocations(), 0, "all buffers freed");
        assert_eq!(rt.remote_traffic_bytes(), 2 * s.offload_bytes());
    }

    #[test]
    fn replay_reports_out_of_memory_on_tiny_pools() {
        let s = sched(Benchmark::VggE);
        let mut rt = RemoteRuntime::new(8 << 20, 8 << 20, PagePolicy::BwAware);
        assert!(replay_through_runtime(&s, &mut rt).is_err());
    }
}
