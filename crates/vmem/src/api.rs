//! The Table I software API extensions.
//!
//! MC-DLA adds a `deviceremote` memory tier to the CUDA runtime: allocation
//! (`cudaMallocRemote`), release (`cudaFreeRemote`), and two new
//! `cudaMemcpyAsync` directions (`LocalToRemote`, `RemoteToLocal`). This
//! module provides that surface as a safe Rust facade over the driver-side
//! [`RemoteAllocator`], so existing framework-level code (the overlay
//! scheduler) can target host-backed and memory-node-backed stores through
//! one interface.

use std::collections::BTreeMap;
use std::fmt;

use mcdla_memnode::{AllocError, PagePolicy, RemoteAllocator};
use serde::{Deserialize, Serialize};

/// Transfer direction of a `cudaMemcpyAsync` (Table I: "direction now
/// includes LocalToRemote and RemoteToLocal").
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemcpyDirection {
    /// Host DRAM → devicelocal (the legacy PCIe path).
    HostToLocal,
    /// devicelocal → host DRAM (the legacy PCIe path).
    LocalToHost,
    /// devicelocal → deviceremote (offload over the device-side links).
    LocalToRemote,
    /// deviceremote → devicelocal (prefetch over the device-side links).
    RemoteToLocal,
}

impl MemcpyDirection {
    /// True for the directions introduced by MC-DLA.
    pub fn is_remote_tier(self) -> bool {
        matches!(
            self,
            MemcpyDirection::LocalToRemote | MemcpyDirection::RemoteToLocal
        )
    }
}

impl fmt::Display for MemcpyDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemcpyDirection::HostToLocal => "HostToLocal",
            MemcpyDirection::LocalToHost => "LocalToHost",
            MemcpyDirection::LocalToRemote => "LocalToRemote",
            MemcpyDirection::RemoteToLocal => "RemoteToLocal",
        };
        f.write_str(s)
    }
}

/// An opaque pointer into the `deviceremote` address space.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RemotePtr(u64);

impl RemotePtr {
    /// Raw handle value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One recorded asynchronous copy.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemcpyOp {
    /// Monotonic submission index (program order on the DMA stream).
    pub seq: u64,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Transfer direction.
    pub direction: MemcpyDirection,
}

/// The MC-DLA runtime extension (`libcudart.so` additions of Table I),
/// tracking `deviceremote` allocations and the asynchronous copy stream.
///
/// # Examples
///
/// ```
/// use mcdla_memnode::PagePolicy;
/// use mcdla_vmem::{MemcpyDirection, RemoteRuntime};
///
/// # fn main() -> Result<(), mcdla_memnode::AllocError> {
/// let mut rt = RemoteRuntime::new(640_000_000_000, 640_000_000_000, PagePolicy::BwAware);
/// let x = rt.cuda_malloc_remote(256 << 20)?;
/// rt.cuda_memcpy_async(256 << 20, MemcpyDirection::LocalToRemote);
/// rt.cuda_memcpy_async(256 << 20, MemcpyDirection::RemoteToLocal);
/// rt.cuda_free_remote(x)?;
/// assert_eq!(rt.remote_traffic_bytes(), 2 * (256 << 20));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RemoteRuntime {
    allocator: RemoteAllocator,
    policy: PagePolicy,
    ptrs: BTreeMap<RemotePtr, u64>, // ptr -> allocation id
    next_ptr: u64,
    ops: Vec<MemcpyOp>,
}

impl RemoteRuntime {
    /// Creates a runtime over the device's two half-memory-node shares
    /// (2 MiB pages) with a default placement policy.
    pub fn new(left_bytes: u64, right_bytes: u64, policy: PagePolicy) -> Self {
        RemoteRuntime {
            allocator: RemoteAllocator::new(left_bytes, right_bytes, 2 << 20),
            policy,
            ptrs: BTreeMap::new(),
            next_ptr: 1,
            ops: Vec::new(),
        }
    }

    /// `cudaMallocRemote`: allocates `size` bytes of deviceremote memory
    /// and returns a pointer to it (Table I).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the placement policy cannot satisfy
    /// the request.
    pub fn cuda_malloc_remote(&mut self, size: u64) -> Result<RemotePtr, AllocError> {
        let alloc = self.allocator.malloc_remote(size, self.policy)?;
        let ptr = RemotePtr(self.next_ptr);
        self.next_ptr += 1;
        self.ptrs.insert(ptr, alloc.id());
        Ok(ptr)
    }

    /// `cudaFreeRemote`: frees memory allocated under deviceremote memory
    /// (Table I).
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAllocation`] for stale or foreign pointers.
    pub fn cuda_free_remote(&mut self, ptr: RemotePtr) -> Result<(), AllocError> {
        let id = self
            .ptrs
            .remove(&ptr)
            .ok_or(AllocError::UnknownAllocation(ptr.0))?;
        self.allocator.free_remote(id)
    }

    /// `cudaMemcpyAsync` with the extended direction set: records the copy
    /// on the DMA stream and returns its op descriptor.
    pub fn cuda_memcpy_async(&mut self, bytes: u64, direction: MemcpyDirection) -> MemcpyOp {
        let op = MemcpyOp {
            seq: self.ops.len() as u64,
            bytes,
            direction,
        };
        self.ops.push(op);
        op
    }

    /// Placement policy in force.
    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    /// Live remote allocation count.
    pub fn live_allocations(&self) -> usize {
        self.ptrs.len()
    }

    /// Free deviceremote bytes.
    pub fn free_bytes(&self) -> u64 {
        self.allocator.free_bytes()
    }

    /// All recorded copies in submission order.
    pub fn ops(&self) -> &[MemcpyOp] {
        &self.ops
    }

    /// Total bytes moved through the new remote-tier directions.
    pub fn remote_traffic_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.direction.is_remote_tier())
            .map(|o| o.bytes)
            .sum()
    }

    /// Total bytes moved through the legacy host directions.
    pub fn host_traffic_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| !o.direction.is_remote_tier())
            .map(|o| o.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> RemoteRuntime {
        RemoteRuntime::new(64 << 30, 64 << 30, PagePolicy::BwAware)
    }

    #[test]
    fn malloc_free_round_trip() {
        let mut r = rt();
        let before = r.free_bytes();
        let p = r.cuda_malloc_remote(1 << 30).unwrap();
        assert_eq!(r.live_allocations(), 1);
        assert!(r.free_bytes() < before);
        r.cuda_free_remote(p).unwrap();
        assert_eq!(r.live_allocations(), 0);
        assert_eq!(r.free_bytes(), before);
    }

    #[test]
    fn double_free_is_an_error() {
        let mut r = rt();
        let p = r.cuda_malloc_remote(4096).unwrap();
        r.cuda_free_remote(p).unwrap();
        assert!(matches!(
            r.cuda_free_remote(p),
            Err(AllocError::UnknownAllocation(_))
        ));
    }

    #[test]
    fn traffic_accounting_by_tier() {
        let mut r = rt();
        r.cuda_memcpy_async(100, MemcpyDirection::LocalToRemote);
        r.cuda_memcpy_async(200, MemcpyDirection::RemoteToLocal);
        r.cuda_memcpy_async(50, MemcpyDirection::HostToLocal);
        r.cuda_memcpy_async(25, MemcpyDirection::LocalToHost);
        assert_eq!(r.remote_traffic_bytes(), 300);
        assert_eq!(r.host_traffic_bytes(), 75);
        assert_eq!(r.ops().len(), 4);
        assert_eq!(r.ops()[2].seq, 2);
    }

    #[test]
    fn direction_classification() {
        assert!(MemcpyDirection::LocalToRemote.is_remote_tier());
        assert!(MemcpyDirection::RemoteToLocal.is_remote_tier());
        assert!(!MemcpyDirection::HostToLocal.is_remote_tier());
        assert!(!MemcpyDirection::LocalToHost.is_remote_tier());
    }

    #[test]
    fn out_of_memory_propagates() {
        let mut r = RemoteRuntime::new(4 << 20, 4 << 20, PagePolicy::BwAware);
        assert!(r.cuda_malloc_remote(1 << 30).is_err());
    }
}
