//! Device-memory residency replay — the O(N) → O(1) argument of §II-B.
//!
//! Replays one training iteration (forward then backward) against a
//! [`VirtSchedule`] and records the device-resident byte count at every
//! step. Without virtualization, every layer's stash stays resident until
//! its backward use, so the peak grows linearly with depth; with the
//! overlay schedule, stashes leave after their last forward use and the
//! peak collapses to weights + a constant working set.

use mcdla_dnn::{DataType, Network};
use serde::{Deserialize, Serialize};

use crate::schedule::{Disposition, VirtSchedule};

/// Resident-byte timeline of one iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencyProfile {
    /// Peak device-resident bytes over the iteration.
    pub peak_bytes: u64,
    /// Resident bytes after each step (forward steps then backward steps).
    pub timeline: Vec<u64>,
    /// Constant overhead held for the whole iteration (weights W + dW).
    pub static_bytes: u64,
}

impl ResidencyProfile {
    /// Replays `net` under `schedule`.
    pub fn replay(net: &Network, schedule: &VirtSchedule) -> Self {
        let batch = schedule.batch();
        let dtype = schedule.dtype();
        let static_bytes = 2 * net.total_weight_bytes(dtype); // W + dW
        let n = net.layers().len();

        // resident[l] = stash of layer l currently in device memory.
        let mut resident: Vec<u64> = vec![0; n];
        let mut timeline = Vec::with_capacity(2 * n);
        let offloads = schedule.offloads_by_trigger();

        // Forward: layer l's stash materializes when l runs; offloadable
        // stashes leave at their trigger layer.
        for l in 0..n {
            resident[l] = schedule.entries()[l].stash_bytes;
            // Recompute stashes are freed immediately after the layer runs
            // (nothing kept for backward).
            if schedule.entries()[l].disposition == Disposition::Recompute {
                resident[l] = 0;
            }
            for e in &offloads[l] {
                resident[e.layer.index()] = 0;
            }
            timeline.push(static_bytes + resident.iter().sum::<u64>());
        }
        // Backward: layer l's stash returns (prefetch or recompute) just
        // before its backward step and is freed right after.
        for l in (0..n).rev() {
            let e = &schedule.entries()[l];
            let temp = match e.disposition {
                Disposition::Offload | Disposition::Recompute => e.stash_bytes,
                Disposition::Resident => 0, // already counted in resident[]
            };
            timeline.push(static_bytes + resident.iter().sum::<u64>() + temp);
            resident[l] = 0;
        }
        let peak = timeline.iter().copied().max().unwrap_or(static_bytes);
        ResidencyProfile {
            peak_bytes: peak,
            timeline,
            static_bytes,
        }
        .with_batch_sanity(batch)
    }

    fn with_batch_sanity(self, _batch: u64) -> Self {
        self
    }

    /// Peak resident bytes excluding the static weights term.
    pub fn peak_dynamic_bytes(&self) -> u64 {
        self.peak_bytes - self.static_bytes
    }

    /// True if the profile ever exceeds a device capacity.
    pub fn exceeds(&self, capacity_bytes: u64) -> bool {
        self.peak_bytes > capacity_bytes
    }
}

/// Convenience: peak residency of `net` with and without the paper-default
/// overlay schedule, at a batch size. Returns `(virtualized, resident)`.
pub fn peak_with_and_without_virtualization(
    net: &Network,
    batch: u64,
    dtype: DataType,
) -> (u64, u64) {
    use crate::schedule::VirtPolicy;
    let on = VirtSchedule::analyze(net, batch, dtype, VirtPolicy::paper_default());
    let off = VirtSchedule::analyze(net, batch, dtype, VirtPolicy::disabled());
    (
        ResidencyProfile::replay(net, &on).peak_bytes,
        ResidencyProfile::replay(net, &off).peak_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::VirtPolicy;
    use mcdla_dnn::{Application, Benchmark, RnnCellKind};

    #[test]
    fn virtualization_reduces_peak() {
        for bm in Benchmark::ALL {
            let net = bm.build();
            let (virt, resident) = peak_with_and_without_virtualization(&net, 64, DataType::F32);
            assert!(
                virt < resident,
                "{bm}: virtualized {virt} should be below resident {resident}"
            );
        }
    }

    #[test]
    fn virtualized_peak_is_depth_independent() {
        // §II-B: O(N) -> O(1). Two LSTMs differing only in depth must have
        // (nearly) identical virtualized dynamic peaks.
        let short = mcdla_dnn::zoo::rnn(
            Application::LanguageModeling,
            "short",
            RnnCellKind::Lstm,
            2048,
            10,
        );
        let long = mcdla_dnn::zoo::rnn(
            Application::LanguageModeling,
            "long",
            RnnCellKind::Lstm,
            2048,
            80,
        );
        let mk = |n: &mcdla_dnn::Network| {
            let s = VirtSchedule::analyze(n, 64, DataType::F32, VirtPolicy::paper_default());
            ResidencyProfile::replay(n, &s)
        };
        let ps = mk(&short);
        let pl = mk(&long);
        assert_eq!(ps.peak_dynamic_bytes(), pl.peak_dynamic_bytes());
        // Unvirtualized, the deeper net's dynamic peak is ~8x larger.
        let (_, r_short) = peak_with_and_without_virtualization(&short, 64, DataType::F32);
        let (_, r_long) = peak_with_and_without_virtualization(&long, 64, DataType::F32);
        let ds = r_short - ps.static_bytes;
        let dl = r_long - pl.static_bytes;
        assert!(dl > 7 * ds && dl < 9 * ds, "{ds} vs {dl}");
    }

    #[test]
    fn timeline_has_forward_and_backward_steps() {
        let net = Benchmark::AlexNet.build();
        let s = VirtSchedule::analyze(&net, 8, DataType::F32, VirtPolicy::paper_default());
        let p = ResidencyProfile::replay(&net, &s);
        assert_eq!(p.timeline.len(), 2 * net.layers().len());
        assert!(p.timeline.iter().all(|&b| b >= p.static_bytes));
        assert_eq!(p.peak_bytes, *p.timeline.iter().max().unwrap());
    }

    #[test]
    fn vgg_at_batch_512_exceeds_16gb_without_virtualization() {
        // The §V-E user-productivity argument: the unvirtualized footprint
        // exceeds any single device's memory.
        let net = Benchmark::VggE.build();
        let (virt, resident) = peak_with_and_without_virtualization(&net, 512, DataType::F32);
        let volta = 16u64 << 30;
        assert!(
            resident > volta,
            "unvirtualized {resident} should exceed 16 GiB"
        );
        assert!(virt < resident);
    }
}
