//! # `mcdla-vmem` — DNN memory virtualization runtime
//!
//! The memory-overlaying layer of the MC-DLA stack (Kwon & Rhu, *Beyond the
//! Memory Wall*, MICRO-51 2018): vDNN-style virtualization that uses device
//! memory as an application-level cache over a backing store — host DRAM in
//! DC/HC-DLA, memory-nodes in MC-DLA. Provides:
//!
//! * [`VirtSchedule`] — the compile-time DAG analysis deciding, per layer,
//!   whether its stashed activations are **offloaded**, **recomputed**, or
//!   kept **resident** (§II-B, footnote 4);
//! * [`ResidencyProfile`] — replay of an iteration's device-resident bytes,
//!   demonstrating the O(N) → O(1) footprint reduction;
//! * [`RemoteRuntime`] — the Table I API extensions (`cudaMallocRemote`,
//!   `cudaFreeRemote`, `cudaMemcpyAsync` with `LocalToRemote` /
//!   `RemoteToLocal`).
//!
//! # Examples
//!
//! ```
//! use mcdla_dnn::{Benchmark, DataType};
//! use mcdla_vmem::{peak_with_and_without_virtualization, VirtPolicy, VirtSchedule};
//!
//! let net = Benchmark::VggE.build();
//! let (virtualized, resident) =
//!     peak_with_and_without_virtualization(&net, 256, DataType::F32);
//! // Virtualization shrinks the peak footprint several-fold for deep CNNs.
//! assert!(virtualized * 3 < resident);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod residency;
mod schedule;
mod timeline;

pub use api::{MemcpyDirection, MemcpyOp, RemotePtr, RemoteRuntime};
pub use residency::{peak_with_and_without_virtualization, ResidencyProfile};
pub use schedule::{Disposition, VirtEntry, VirtPolicy, VirtSchedule};
pub use timeline::{compile_overlay_ops, replay_through_runtime, OverlayOp};
