//! Compile-time memory-overlaying schedule (§II-B, §IV).
//!
//! The DL framework analyzes the network DAG at compile time, derives each
//! feature map's data dependencies, and schedules software-managed overlay
//! operations: every non-cheap layer's input feature map **X** is offloaded
//! to the backing store after its **last forward use** and prefetched back
//! before its **backward use**. Layers with short computation time
//! (activations, pooling, ...) are *recomputed* during backpropagation
//! instead (footnote 4, the MXNet optimization), which removes their
//! overlay traffic.
//!
//! Following §IV, the default policy offloads unconditionally — the paper
//! uses the workloads "as microbenchmarks to stress test the system
//! interconnect" — but the policy is configurable for the §V-D scalability
//! study, which disables virtualization entirely.

use mcdla_dnn::{DataType, LayerId, LayerKind, Network};
use serde::{Deserialize, Serialize};

/// What happens to a layer's stashed activations between forward and
/// backward propagation.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Disposition {
    /// Offloaded to the backing store after last forward use, prefetched
    /// before backward use.
    Offload,
    /// Freed after forward use and recomputed during backpropagation
    /// (cheap layers).
    Recompute,
    /// Kept resident in device memory (virtualization disabled or tensor
    /// below the offload threshold).
    Resident,
}

/// Policy knobs for [`VirtSchedule::analyze`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtPolicy {
    /// Offload every eligible stash (the paper's stress-test policy). When
    /// false, everything is [`Disposition::Resident`] — the DC-DLA(O)
    /// oracle and the §V-D "virtualization disabled" runs.
    pub enabled: bool,
    /// Recompute cheap layers instead of offloading their inputs.
    pub recompute_cheap: bool,
    /// Stashes smaller than this stay resident (overlaying tiny tensors
    /// costs more latency than it saves memory).
    pub min_offload_bytes: u64,
}

impl VirtPolicy {
    /// The paper's §IV evaluation policy.
    pub fn paper_default() -> Self {
        VirtPolicy {
            enabled: true,
            recompute_cheap: true,
            min_offload_bytes: 0,
        }
    }

    /// Virtualization disabled (oracle / scalability study).
    pub fn disabled() -> Self {
        VirtPolicy {
            enabled: false,
            recompute_cheap: false,
            min_offload_bytes: 0,
        }
    }
}

impl Default for VirtPolicy {
    fn default() -> Self {
        VirtPolicy::paper_default()
    }
}

/// One layer's overlay decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtEntry {
    /// The layer whose stash this entry describes.
    pub layer: LayerId,
    /// Overlay decision.
    pub disposition: Disposition,
    /// Stash size in bytes (input feature map X, or gate activations for
    /// recurrent cells).
    pub stash_bytes: u64,
    /// The layer after whose forward pass the stash may leave device
    /// memory (its last forward consumer).
    pub offload_after: LayerId,
}

/// The complete overlay schedule for one network and batch size.
///
/// # Examples
///
/// ```
/// use mcdla_dnn::{Benchmark, DataType};
/// use mcdla_vmem::{VirtPolicy, VirtSchedule};
///
/// let net = Benchmark::AlexNet.build();
/// let sched = VirtSchedule::analyze(&net, 64, DataType::F32, VirtPolicy::paper_default());
/// // Offload traffic exists, and prefetch mirrors it.
/// assert!(sched.offload_bytes() > 0);
/// assert_eq!(sched.offload_bytes(), sched.prefetch_bytes());
/// // Cheap layers (ReLU, pool, LRN) are recomputed, not offloaded.
/// assert!(sched.recompute_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtSchedule {
    entries: Vec<VirtEntry>,
    batch: u64,
    dtype: DataType,
}

impl VirtSchedule {
    /// Derives the overlay schedule from the network DAG.
    pub fn analyze(net: &Network, batch: u64, dtype: DataType, policy: VirtPolicy) -> Self {
        let last_consumer = net.last_consumer();
        let entries = net
            .layers()
            .iter()
            .map(|l| {
                let stash = l.stash_bytes(batch, dtype);
                let is_input = matches!(l.kind(), LayerKind::Input);
                let disposition = if !policy.enabled || stash == 0 || is_input {
                    Disposition::Resident
                } else if l.is_cheap() && policy.recompute_cheap {
                    Disposition::Recompute
                } else if stash >= policy.min_offload_bytes {
                    Disposition::Offload
                } else {
                    Disposition::Resident
                };
                VirtEntry {
                    layer: l.id(),
                    disposition,
                    stash_bytes: stash,
                    // X of layer l is produced by l's inputs and last *used*
                    // in forward by l itself or a later sibling consumer of
                    // the same producer. Conservatively: X(l) is live until
                    // the last consumer of each of l's producers has run;
                    // for the linearized schedule we key on l's own forward
                    // completion or the last consumer of its producer,
                    // whichever is later.
                    offload_after: l
                        .inputs()
                        .iter()
                        .map(|p| last_consumer[p.index()])
                        .max()
                        .unwrap_or(l.id()),
                }
            })
            .collect();
        VirtSchedule {
            entries,
            batch,
            dtype,
        }
    }

    /// All entries in topological order.
    pub fn entries(&self) -> &[VirtEntry] {
        &self.entries
    }

    /// Entry for a layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` does not belong to the analyzed network.
    pub fn entry(&self, layer: LayerId) -> &VirtEntry {
        &self.entries[layer.index()]
    }

    /// Batch size the schedule was derived for.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Element precision the schedule was derived for.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Total bytes moved device → backing store per iteration.
    pub fn offload_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.disposition == Disposition::Offload)
            .map(|e| e.stash_bytes)
            .sum()
    }

    /// Total bytes moved backing store → device per iteration (every
    /// offloaded stash comes back for backpropagation).
    pub fn prefetch_bytes(&self) -> u64 {
        self.offload_bytes()
    }

    /// Number of layers resolved to recomputation.
    pub fn recompute_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.disposition == Disposition::Recompute)
            .count()
    }

    /// Number of layers offloaded.
    pub fn offload_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.disposition == Disposition::Offload)
            .count()
    }

    /// Offload operations grouped by trigger point: `result[i]` lists the
    /// entries whose stash leaves device memory once layer `i`'s forward
    /// pass completes. Used by the iteration engine to enqueue DMA work.
    pub fn offloads_by_trigger(&self) -> Vec<Vec<&VirtEntry>> {
        let mut by_trigger: Vec<Vec<&VirtEntry>> = vec![Vec::new(); self.entries.len()];
        for e in &self.entries {
            if e.disposition == Disposition::Offload {
                by_trigger[e.offload_after.index()].push(e);
            }
        }
        by_trigger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdla_dnn::Benchmark;

    fn sched(bm: Benchmark, batch: u64) -> (mcdla_dnn::Network, VirtSchedule) {
        let net = bm.build();
        let s = VirtSchedule::analyze(&net, batch, DataType::F32, VirtPolicy::paper_default());
        (net, s)
    }

    #[test]
    fn major_layers_offload_cheap_layers_recompute() {
        let (net, s) = sched(Benchmark::AlexNet, 64);
        for (l, e) in net.layers().iter().zip(s.entries()) {
            match l.kind() {
                LayerKind::Input => assert_eq!(e.disposition, Disposition::Resident),
                k if k.is_cheap() => assert_eq!(
                    e.disposition,
                    Disposition::Recompute,
                    "cheap layer {} should recompute",
                    l.name()
                ),
                _ => assert_eq!(
                    e.disposition,
                    Disposition::Offload,
                    "major layer {} should offload",
                    l.name()
                ),
            }
        }
    }

    #[test]
    fn offload_happens_after_last_forward_use() {
        let (net, s) = sched(Benchmark::GoogLeNet, 16);
        let last = net.last_consumer();
        for e in s.entries() {
            if e.disposition == Disposition::Offload {
                let l = net.layer(e.layer);
                for p in l.inputs() {
                    assert!(
                        e.offload_after >= last[p.index()],
                        "layer {} offloads X before its producer {p}'s last consumer",
                        l.name()
                    );
                }
                assert!(e.offload_after >= *l.inputs().iter().max().unwrap());
            }
        }
    }

    #[test]
    fn traffic_scales_with_batch() {
        let (_, s64) = sched(Benchmark::VggE, 64);
        let (_, s128) = sched(Benchmark::VggE, 128);
        assert_eq!(s128.offload_bytes(), 2 * s64.offload_bytes());
    }

    #[test]
    fn disabled_policy_moves_nothing() {
        let net = Benchmark::VggE.build();
        let s = VirtSchedule::analyze(&net, 64, DataType::F32, VirtPolicy::disabled());
        assert_eq!(s.offload_bytes(), 0);
        assert_eq!(s.offload_count(), 0);
        assert_eq!(s.recompute_count(), 0);
        assert!(s
            .entries()
            .iter()
            .all(|e| e.disposition == Disposition::Resident));
    }

    #[test]
    fn min_offload_threshold_keeps_small_tensors_resident() {
        let net = Benchmark::AlexNet.build();
        let policy = VirtPolicy {
            min_offload_bytes: 100 << 20, // 100 MiB
            ..VirtPolicy::paper_default()
        };
        let s = VirtSchedule::analyze(&net, 1, DataType::F32, policy);
        // At batch 1 every AlexNet stash is < 100 MiB.
        assert_eq!(s.offload_count(), 0);
        assert!(s
            .entries()
            .iter()
            .any(|e| e.disposition == Disposition::Resident));
    }

    #[test]
    fn rnn_offload_traffic_counts_gate_stashes() {
        let (net, s) = sched(Benchmark::RnnLstm2, 64);
        // Every unrolled timestep offloads its stash.
        assert_eq!(s.offload_count(), net.weighted_depth());
        let per_step = net.layers()[1].stash_bytes(64, DataType::F32);
        assert_eq!(s.offload_bytes(), per_step * net.weighted_depth() as u64);
    }

    #[test]
    fn offloads_by_trigger_partitions_all_offloads() {
        let (_, s) = sched(Benchmark::GoogLeNet, 8);
        let by_trigger = s.offloads_by_trigger();
        let total: usize = by_trigger.iter().map(Vec::len).sum();
        assert_eq!(total, s.offload_count());
        // Triggers only fire at or after the stash's own layer... producers
        // may sit earlier but never later than the trigger.
        for (trigger, entries) in by_trigger.iter().enumerate() {
            for e in entries {
                assert_eq!(e.offload_after.index(), trigger);
            }
        }
    }
}
