//! System-level power accounting (§V-C).
//!
//! MC-DLA reuses the accelerators as-is; the added power is the eight
//! memory-nodes on the ring. The paper anchors against NVIDIA's DGX
//! (3,200 W TDP, of which the eight V100s draw 2,400 W) and reports a 7%
//! (8 GB RDIMM nodes) to 31% (128 GB LRDIMM nodes) system-power increase,
//! netting 2.6× to 2.1× perf/W at the headline 2.8× speedup.

use serde::{Deserialize, Serialize};

use crate::config::MemoryNodeConfig;
use crate::dimm::DimmKind;

/// DGX-1V system TDP in watts (§V-C).
pub const DGX_SYSTEM_TDP_WATTS: f64 = 3200.0;

/// Power draw of the eight V100s inside the DGX (75% of system TDP).
pub const DGX_GPU_TDP_WATTS: f64 = 2400.0;

/// Power summary of one system design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPower {
    /// Baseline system TDP (DGX-class chassis).
    pub base_watts: f64,
    /// Added memory-node power.
    pub memnode_watts: f64,
    /// Number of memory-nodes.
    pub memnode_count: usize,
    /// Added memory capacity in bytes.
    pub added_capacity_bytes: u64,
}

impl SystemPower {
    /// A DC-DLA system: no memory-nodes.
    pub fn dc_dla() -> Self {
        SystemPower {
            base_watts: DGX_SYSTEM_TDP_WATTS,
            memnode_watts: 0.0,
            memnode_count: 0,
            added_capacity_bytes: 0,
        }
    }

    /// An MC-DLA system with `count` memory-nodes of the given
    /// configuration.
    pub fn mc_dla(config: &MemoryNodeConfig, count: usize) -> Self {
        SystemPower {
            base_watts: DGX_SYSTEM_TDP_WATTS,
            memnode_watts: config.tdp_watts() * count as f64,
            memnode_count: count,
            added_capacity_bytes: config.capacity_bytes() * count as u64,
        }
    }

    /// Total system power.
    pub fn total_watts(&self) -> f64 {
        self.base_watts + self.memnode_watts
    }

    /// Fractional increase over the DC-DLA baseline (0.07 for 8 GB RDIMM
    /// nodes, 0.31 for 128 GB LRDIMM nodes).
    pub fn overhead_fraction(&self) -> f64 {
        self.memnode_watts / self.base_watts
    }

    /// Performance-per-watt ratio vs the DC-DLA baseline, given a speedup
    /// over DC-DLA: `speedup / (1 + overhead)`.
    pub fn perf_per_watt_gain(&self, speedup: f64) -> f64 {
        speedup / (1.0 + self.overhead_fraction())
    }
}

/// The §V-C headline: perf/W gains for the power-limited and the
/// capacity-optimized memory-node choices at the paper's 2.8× speedup.
pub fn paper_perf_per_watt_range(speedup: f64) -> (f64, f64) {
    let rdimm8 = SystemPower::mc_dla(&MemoryNodeConfig::with_dimm(DimmKind::Rdimm8), 8);
    let lrdimm128 = SystemPower::mc_dla(&MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128), 8);
    (
        lrdimm128.perf_per_watt_gain(speedup),
        rdimm8.perf_per_watt_gain(speedup),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdimm8_overhead_is_7_percent() {
        // §V-C: 29 W x 8 = 232 W, a 7% increase over the 3,200 W DGX.
        let p = SystemPower::mc_dla(&MemoryNodeConfig::with_dimm(DimmKind::Rdimm8), 8);
        assert!((p.memnode_watts - 232.0).abs() < 1e-9);
        assert!((p.overhead_fraction() - 0.0725).abs() < 0.001);
    }

    #[test]
    fn lrdimm128_overhead_is_31_percent() {
        // §V-C: 127 W x 8 = 1,016 W, a 31% increase, adding 10.4 TB* of
        // memory (*8 x 1.28 TB = 10.24 TB decimal).
        let p = SystemPower::mc_dla(&MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128), 8);
        assert!((p.memnode_watts - 1016.0).abs() < 1e-9);
        assert!((p.overhead_fraction() - 0.3175).abs() < 0.001);
        assert_eq!(p.added_capacity_bytes, 8 * 1_280_000_000_000);
    }

    #[test]
    fn perf_per_watt_matches_section_5c() {
        // §V-C: (2.8/1.31) = 2.1x to (2.8/1.07) = 2.6x.
        let (lo, hi) = paper_perf_per_watt_range(2.8);
        assert!((lo - 2.8 / 1.3175).abs() < 0.01, "{lo}");
        assert!((hi - 2.8 / 1.0725).abs() < 0.01, "{hi}");
        assert!(lo > 2.0 && lo < 2.2);
        assert!(hi > 2.5 && hi < 2.7);
    }

    #[test]
    fn dc_dla_has_no_overhead() {
        let p = SystemPower::dc_dla();
        assert_eq!(p.total_watts(), DGX_SYSTEM_TDP_WATTS);
        assert_eq!(p.overhead_fraction(), 0.0);
        assert_eq!(p.perf_per_watt_gain(1.0), 1.0);
    }
}
