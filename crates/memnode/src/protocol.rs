//! The memory-node's protocol engine and optional payload-processing ASICs.
//!
//! Fig. 6 shows each memory-node fronting its DIMMs with a protocol engine
//! compatible with the device-side interconnect, and notes that "an ASIC
//! that handles encryption or compression can optionally be added". This
//! module models that datapath: per-transfer protocol overhead, an optional
//! compression unit (which multiplies effective link bandwidth, the cDMA
//! observation of §V-B), and an optional encryption unit (which adds fixed
//! pipeline latency but sustains line rate).

use serde::{Deserialize, Serialize};

/// Optional compression stage in the protocol engine datapath.
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionUnit {
    /// Average compression ratio on DNN activation traffic (cDMA reports
    /// 2.6x on CNN feature maps, driven by ReLU sparsity).
    pub ratio: f64,
    /// Throughput ceiling of the (de)compressor in GB/s of *uncompressed*
    /// data.
    pub throughput_gbs: f64,
}

impl CompressionUnit {
    /// The cDMA-style unit of §V-B: 2.6x average ratio at line rate.
    pub fn cdma() -> Self {
        CompressionUnit {
            ratio: 2.6,
            throughput_gbs: 300.0,
        }
    }
}

/// Optional inline-encryption stage (AES-GCM-class).
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptionUnit {
    /// Added pipeline latency per transfer in nanoseconds.
    pub latency_ns: u64,
    /// Line-rate ceiling in GB/s.
    pub throughput_gbs: f64,
}

impl EncryptionUnit {
    /// A line-rate AES engine with sub-microsecond pipeline depth.
    pub fn aes_line_rate() -> Self {
        EncryptionUnit {
            latency_ns: 500,
            throughput_gbs: 400.0,
        }
    }
}

/// The Fig. 6 protocol engine: link termination plus optional payload
/// stages.
///
/// # Examples
///
/// ```
/// use mcdla_memnode::{CompressionUnit, ProtocolEngine};
///
/// let plain = ProtocolEngine::new(100.0);
/// let compressed = ProtocolEngine::new(100.0).with_compression(CompressionUnit::cdma());
/// // Compression multiplies effective bandwidth for compressible traffic.
/// assert!(compressed.effective_bandwidth_gbs() > 2.0 * plain.effective_bandwidth_gbs());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolEngine {
    link_bandwidth_gbs: f64,
    compression: Option<CompressionUnit>,
    encryption: Option<EncryptionUnit>,
    /// Per-transfer protocol handshake latency in nanoseconds.
    pub handshake_ns: u64,
}

impl ProtocolEngine {
    /// An engine terminating `link_bandwidth_gbs` of link bandwidth with no
    /// optional stages.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn new(link_bandwidth_gbs: f64) -> Self {
        assert!(link_bandwidth_gbs > 0.0, "bandwidth must be positive");
        ProtocolEngine {
            link_bandwidth_gbs,
            compression: None,
            encryption: None,
            handshake_ns: 200,
        }
    }

    /// Adds the compression stage.
    pub fn with_compression(mut self, unit: CompressionUnit) -> Self {
        self.compression = Some(unit);
        self
    }

    /// Adds the encryption stage.
    pub fn with_encryption(mut self, unit: EncryptionUnit) -> Self {
        self.encryption = Some(unit);
        self
    }

    /// Raw link bandwidth terminated by this engine.
    pub fn link_bandwidth_gbs(&self) -> f64 {
        self.link_bandwidth_gbs
    }

    /// Effective bandwidth seen by compressible traffic: the link carries
    /// compressed bytes, so throughput multiplies by the ratio, bounded by
    /// the ASIC's own throughput and (if present) the encryption engine.
    pub fn effective_bandwidth_gbs(&self) -> f64 {
        let mut bw = self.link_bandwidth_gbs;
        if let Some(c) = self.compression {
            bw = (bw * c.ratio).min(c.throughput_gbs);
        }
        if let Some(e) = self.encryption {
            bw = bw.min(e.throughput_gbs);
        }
        bw
    }

    /// Wire bytes for a logical transfer of `bytes` (after compression).
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        match self.compression {
            Some(c) => (bytes as f64 / c.ratio).round() as u64,
            None => bytes,
        }
    }

    /// Total fixed latency per transfer in nanoseconds (handshake plus
    /// encryption pipeline).
    pub fn fixed_latency_ns(&self) -> u64 {
        self.handshake_ns + self.encryption.map_or(0, |e| e.latency_ns)
    }

    /// Transfer time in seconds for `bytes` of logical payload.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.fixed_latency_ns() as f64 * 1e-9
            + bytes as f64 / (self.effective_bandwidth_gbs() * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_engine_is_link_limited() {
        let e = ProtocolEngine::new(150.0);
        assert_eq!(e.effective_bandwidth_gbs(), 150.0);
        assert_eq!(e.wire_bytes(1_000_000), 1_000_000);
        assert_eq!(e.fixed_latency_ns(), 200);
    }

    #[test]
    fn cdma_compression_multiplies_bandwidth() {
        let e = ProtocolEngine::new(100.0).with_compression(CompressionUnit::cdma());
        assert!((e.effective_bandwidth_gbs() - 260.0).abs() < 1e-9);
        // Wire traffic shrinks by the ratio.
        assert_eq!(e.wire_bytes(2_600_000), 1_000_000);
    }

    #[test]
    fn compressor_throughput_caps_the_gain() {
        let slow = CompressionUnit {
            ratio: 4.0,
            throughput_gbs: 200.0,
        };
        let e = ProtocolEngine::new(150.0).with_compression(slow);
        assert_eq!(e.effective_bandwidth_gbs(), 200.0);
    }

    #[test]
    fn encryption_adds_latency_not_bandwidth_loss() {
        let e = ProtocolEngine::new(150.0).with_encryption(EncryptionUnit::aes_line_rate());
        assert_eq!(e.effective_bandwidth_gbs(), 150.0);
        assert_eq!(e.fixed_latency_ns(), 700);
        // A slow encryptor would bind.
        let slow = EncryptionUnit {
            latency_ns: 100,
            throughput_gbs: 80.0,
        };
        let e = ProtocolEngine::new(150.0).with_encryption(slow);
        assert_eq!(e.effective_bandwidth_gbs(), 80.0);
    }

    #[test]
    fn stacked_stages_compose() {
        let e = ProtocolEngine::new(150.0)
            .with_compression(CompressionUnit::cdma())
            .with_encryption(EncryptionUnit::aes_line_rate());
        // 150 * 2.6 = 390, capped by compressor 300, then AES 400 -> 300.
        assert_eq!(e.effective_bandwidth_gbs(), 300.0);
        let t = e.transfer_secs(300_000_000_000);
        assert!((t - (1.0 + 700e-9)).abs() < 1e-6, "{t}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = ProtocolEngine::new(0.0);
    }
}
