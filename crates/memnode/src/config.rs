//! Memory-node architecture configuration (Fig. 6, Table II).
//!
//! A memory-node is a mezzanine board sized like a V100 (14 cm × 8 cm)
//! housing ten DDR4 DIMMs behind a memory controller, a DMA unit, and a
//! protocol engine exposing N high-bandwidth links. The N links are
//! logically partitioned into M groups; each group is exclusively assigned
//! to one client device-node (§III-A).

use serde::{Deserialize, Serialize};

use crate::dimm::DimmKind;

/// Configuration of one memory-node.
///
/// # Examples
///
/// ```
/// use mcdla_memnode::MemoryNodeConfig;
///
/// let node = MemoryNodeConfig::paper_baseline();
/// // Table II: 256 GB/s of DIMM bandwidth behind 6 x 25 GB/s links.
/// assert_eq!(node.memory_bandwidth_gbs, 256.0);
/// assert_eq!(node.link_count, 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryNodeConfig {
    /// DIMM module type populated (Table IV options).
    pub dimm: DimmKind,
    /// Number of DIMMs on the board (ten fit the V100-sized mezzanine).
    pub dimm_count: usize,
    /// Aggregate DIMM bandwidth in GB/s (170 for PC4-17000, 256 for
    /// PC4-25600; Table II uses 256).
    pub memory_bandwidth_gbs: f64,
    /// Memory access latency in nanoseconds (Table II: 100 cycles at 1 GHz).
    pub memory_latency_ns: u64,
    /// High-bandwidth links exposed by the protocol engine (Table II's N).
    pub link_count: usize,
    /// Uni-directional bandwidth per link in GB/s (Table II's B).
    pub link_bandwidth_gbs: f64,
    /// Number of link groups M (M ≤ N); each group serves one client
    /// device exclusively. The ring-based MC-DLA partitions each node in
    /// two (left and right client devices).
    pub link_groups: usize,
}

impl MemoryNodeConfig {
    /// Table II memory-node: ten DIMMs at 256 GB/s, 100 ns, six 25 GB/s
    /// links split into two groups (one per neighbor device).
    pub fn paper_baseline() -> Self {
        MemoryNodeConfig {
            dimm: DimmKind::Lrdimm128,
            dimm_count: 10,
            memory_bandwidth_gbs: 256.0,
            memory_latency_ns: 100,
            link_count: 6,
            link_bandwidth_gbs: 25.0,
            link_groups: 2,
        }
    }

    /// The PC4-17000 variant (170 GB/s) mentioned in §III-A.
    pub fn pc4_17000() -> Self {
        MemoryNodeConfig {
            memory_bandwidth_gbs: 170.0,
            ..MemoryNodeConfig::paper_baseline()
        }
    }

    /// A baseline populated with a specific DIMM option.
    pub fn with_dimm(dimm: DimmKind) -> Self {
        MemoryNodeConfig {
            dimm,
            ..MemoryNodeConfig::paper_baseline()
        }
    }

    /// Total capacity in bytes (decimal GB per Table IV).
    pub fn capacity_bytes(&self) -> u64 {
        self.dimm.capacity_gb() * self.dimm_count as u64 * 1_000_000_000
    }

    /// Board TDP in watts (`dimm TDP × dimm count`, Table IV "Memory-node
    /// TDP").
    pub fn tdp_watts(&self) -> f64 {
        self.dimm.tdp_watts() * self.dimm_count as f64
    }

    /// Capacity efficiency in decimal GB per watt (Table IV's last column).
    pub fn gb_per_watt(&self) -> f64 {
        self.dimm.capacity_gb() as f64 * self.dimm_count as f64 / self.tdp_watts()
    }

    /// Links per group: `(N/M)`, the paper's per-client allocation.
    pub fn links_per_group(&self) -> usize {
        self.link_count / self.link_groups
    }

    /// Per-client link bandwidth in GB/s: `(N/M) × B` (Fig. 6; 75 GB/s for
    /// the baseline's two groups).
    pub fn group_bandwidth_gbs(&self) -> f64 {
        self.links_per_group() as f64 * self.link_bandwidth_gbs
    }

    /// Effective read (or write) bandwidth one client group can sustain:
    /// link-limited or DIMM-limited, whichever binds. The DIMM bandwidth is
    /// shared by all M groups.
    pub fn effective_group_bandwidth_gbs(&self) -> f64 {
        self.group_bandwidth_gbs()
            .min(self.memory_bandwidth_gbs / self.link_groups as f64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.dimm_count == 0 {
            return Err("memory-node needs at least one DIMM".into());
        }
        if self.memory_bandwidth_gbs <= 0.0 {
            return Err("memory bandwidth must be positive".into());
        }
        if self.link_count == 0 || self.link_bandwidth_gbs <= 0.0 {
            return Err("memory-node needs high-bandwidth links".into());
        }
        if self.link_groups == 0 || self.link_groups > self.link_count {
            return Err("link groups must satisfy 1 <= M <= N".into());
        }
        Ok(())
    }
}

impl Default for MemoryNodeConfig {
    fn default() -> Self {
        MemoryNodeConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = MemoryNodeConfig::paper_baseline();
        assert!(c.validate().is_ok());
        assert_eq!(c.memory_bandwidth_gbs, 256.0);
        assert_eq!(c.memory_latency_ns, 100);
        assert_eq!(c.link_count, 6);
        assert_eq!(c.link_bandwidth_gbs, 25.0);
    }

    #[test]
    fn capacity_envelope_matches_section_3a() {
        // §III-A: ten DIMMs give 80 GB (8 GB RDIMM) to 1.3 TB (128 GB
        // LRDIMM) per memory-node.
        let small = MemoryNodeConfig::with_dimm(DimmKind::Rdimm8);
        let large = MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128);
        assert_eq!(small.capacity_bytes(), 80_000_000_000);
        assert_eq!(large.capacity_bytes(), 1_280_000_000_000);
    }

    #[test]
    fn table4_node_tdp_and_gb_per_watt() {
        // (DIMM TDP x 10, GB/W) rows of Table IV: 29 W/2.8, 66/2.4, 87/3.7,
        // 102/6.3, 127/10.1.
        let expect = [
            (DimmKind::Rdimm8, 29.0, 2.8),
            (DimmKind::Rdimm16, 66.0, 2.4),
            (DimmKind::Lrdimm32, 87.0, 3.7),
            (DimmKind::Lrdimm64, 102.0, 6.3),
            (DimmKind::Lrdimm128, 127.0, 10.1),
        ];
        for (dimm, tdp, gbw) in expect {
            let c = MemoryNodeConfig::with_dimm(dimm);
            assert!(
                (c.tdp_watts() - tdp).abs() < 1e-9,
                "{dimm}: {}",
                c.tdp_watts()
            );
            assert!(
                (c.gb_per_watt() - gbw).abs() < 0.05,
                "{dimm}: {:.2} GB/W vs {gbw}",
                c.gb_per_watt()
            );
        }
    }

    #[test]
    fn group_bandwidth_split() {
        let c = MemoryNodeConfig::paper_baseline();
        assert_eq!(c.links_per_group(), 3);
        assert_eq!(c.group_bandwidth_gbs(), 75.0);
        // DIMM side: 256/2 = 128 GB/s per group; links (75) bind.
        assert_eq!(c.effective_group_bandwidth_gbs(), 75.0);
        // A single-group node is DIMM-limited only above 150 GB/s of links.
        let mut one = MemoryNodeConfig::paper_baseline();
        one.link_groups = 1;
        assert_eq!(one.group_bandwidth_gbs(), 150.0);
        assert_eq!(one.effective_group_bandwidth_gbs(), 150.0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MemoryNodeConfig::paper_baseline();
        c.link_groups = 7;
        assert!(c.validate().is_err());
        let mut c = MemoryNodeConfig::paper_baseline();
        c.dimm_count = 0;
        assert!(c.validate().is_err());
    }
}
