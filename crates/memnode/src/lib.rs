//! # `mcdla-memnode` — the memory-node architecture
//!
//! The paper's §III-A building block: a pool of capacity-optimized DDR4
//! DIMMs behind a protocol engine, DMA unit, and memory controller, sized
//! like a PCIe accelerator board and stationed inside the device-side
//! interconnect. This crate provides:
//!
//! * [`DimmKind`] — the Table IV commodity module catalog (8 GB RDIMM to
//!   128 GB LRDIMM);
//! * [`MemoryNodeConfig`] — Fig. 6 / Table II node parameters (ten DIMMs,
//!   256 GB/s, N = 6 links in M groups);
//! * [`RemoteAllocator`] / [`PagePolicy`] — Fig. 10's LOCAL and BW_AWARE
//!   page-placement policies over the left/right half-node shares;
//! * [`SystemPower`] — §V-C power accounting (7%–31% system overhead,
//!   2.1×–2.6× perf/W).
//!
//! # Examples
//!
//! ```
//! use mcdla_memnode::{DimmKind, MemoryNodeConfig};
//!
//! // The capacity-optimized configuration: 1.28 TB per node at 127 W.
//! let node = MemoryNodeConfig::with_dimm(DimmKind::Lrdimm128);
//! assert_eq!(node.capacity_bytes(), 1_280_000_000_000);
//! // Eight nodes expand the system by >10 TB (the paper's "10s of TBs").
//! assert!(8 * node.capacity_bytes() > 10_000_000_000_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod config;
mod dimm;
mod power;
mod protocol;

pub use alloc::{AllocError, PagePolicy, RemoteAllocation, RemoteAllocator, Side};
pub use config::MemoryNodeConfig;
pub use dimm::DimmKind;
pub use power::{paper_perf_per_watt_range, SystemPower, DGX_GPU_TDP_WATTS, DGX_SYSTEM_TDP_WATTS};
pub use protocol::{CompressionUnit, EncryptionUnit, ProtocolEngine};
