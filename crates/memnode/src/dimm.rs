//! Commodity DDR4 DIMM catalog (Table IV).
//!
//! The paper populates memory-nodes with capacity/density-optimized
//! commodity DIMMs, from 8–16 GB registered DIMMs to 32–128 GB load-reduced
//! DIMMs, and estimates power from public Samsung datasheets and Micron's
//! DDR4 system power calculator (§V-C, Table IV).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One DDR4 module option from Table IV (DDR4-2400).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimmKind {
    /// 8 GB registered DIMM (2.9 W) — the power-limited choice.
    Rdimm8,
    /// 16 GB registered DIMM (6.6 W).
    Rdimm16,
    /// 32 GB load-reduced DIMM (8.7 W).
    Lrdimm32,
    /// 64 GB load-reduced DIMM (10.2 W).
    Lrdimm64,
    /// 128 GB load-reduced DIMM (12.7 W) — the capacity-optimized choice
    /// (1.3 TB per node, best GB/W).
    Lrdimm128,
}

impl DimmKind {
    /// All Table IV rows, smallest first.
    pub const ALL: [DimmKind; 5] = [
        DimmKind::Rdimm8,
        DimmKind::Rdimm16,
        DimmKind::Lrdimm32,
        DimmKind::Lrdimm64,
        DimmKind::Lrdimm128,
    ];

    /// Module capacity in decimal gigabytes.
    pub fn capacity_gb(self) -> u64 {
        match self {
            DimmKind::Rdimm8 => 8,
            DimmKind::Rdimm16 => 16,
            DimmKind::Lrdimm32 => 32,
            DimmKind::Lrdimm64 => 64,
            DimmKind::Lrdimm128 => 128,
        }
    }

    /// Module TDP in watts (Table IV, "Single DIMM TDP").
    pub fn tdp_watts(self) -> f64 {
        match self {
            DimmKind::Rdimm8 => 2.9,
            DimmKind::Rdimm16 => 6.6,
            DimmKind::Lrdimm32 => 8.7,
            DimmKind::Lrdimm64 => 10.2,
            DimmKind::Lrdimm128 => 12.7,
        }
    }

    /// True for load-reduced (vs registered) modules.
    pub fn is_load_reduced(self) -> bool {
        matches!(
            self,
            DimmKind::Lrdimm32 | DimmKind::Lrdimm64 | DimmKind::Lrdimm128
        )
    }

    /// Table IV display name.
    pub fn name(self) -> &'static str {
        match self {
            DimmKind::Rdimm8 => "8 GB RDIMM",
            DimmKind::Rdimm16 => "16 GB RDIMM",
            DimmKind::Lrdimm32 => "32 GB LRDIMM",
            DimmKind::Lrdimm64 => "64 GB LRDIMM",
            DimmKind::Lrdimm128 => "128 GB LRDIMM",
        }
    }
}

impl fmt::Display for DimmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        assert_eq!(DimmKind::Rdimm8.capacity_gb(), 8);
        assert_eq!(DimmKind::Rdimm8.tdp_watts(), 2.9);
        assert_eq!(DimmKind::Lrdimm128.capacity_gb(), 128);
        assert_eq!(DimmKind::Lrdimm128.tdp_watts(), 12.7);
    }

    #[test]
    fn capacity_is_monotonic() {
        let caps: Vec<u64> = DimmKind::ALL.iter().map(|d| d.capacity_gb()).collect();
        assert!(caps.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn lrdimm_classification() {
        assert!(!DimmKind::Rdimm8.is_load_reduced());
        assert!(!DimmKind::Rdimm16.is_load_reduced());
        assert!(DimmKind::Lrdimm32.is_load_reduced());
        assert!(DimmKind::Lrdimm128.is_load_reduced());
    }
}
