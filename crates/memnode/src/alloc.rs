//! Page allocation and placement over `deviceremote` memory (Fig. 10).
//!
//! The device driver concatenates each half of the left and right
//! memory-nodes' physical memory above the devicelocal region in a single
//! device address space. `cudaMallocRemote` requests are placed by one of
//! two policies:
//!
//! * **LOCAL** — the whole allocation lands in a single memory-node's
//!   share, reachable at `(N/2) × B` GB/s;
//! * **BW_AWARE** — the allocation is split into two page-aligned halves
//!   interleaved round-robin across the left and right memory-nodes, so
//!   reads and writes proceed concurrently over all N links:
//!
//! ```text
//! Latency_LOCAL    = D / (N·B/2)
//! Latency_BW_AWARE = (D/2) / (N·B/2)   per side, concurrently = D / (N·B)
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which neighbor memory-node a page lives in.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The memory-node on the device's logical left in the ring.
    Left,
    /// The memory-node on the device's logical right in the ring.
    Right,
}

/// Page placement policy (Fig. 10).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PagePolicy {
    /// Entire allocation under a single memory-node — named after
    /// libNUMA's local zone policy (paper footnote 3).
    Local,
    /// Split in two page-aligned halves, round-robin across both
    /// memory-nodes, unlocking all N links.
    #[default]
    BwAware,
}

impl fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagePolicy::Local => f.write_str("LOCAL"),
            PagePolicy::BwAware => f.write_str("BW_AWARE"),
        }
    }
}

/// One allocated remote region: which pages live on which side.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteAllocation {
    id: u64,
    bytes: u64,
    page_bytes: u64,
    /// Page-index placement, in virtual page order.
    placement: Vec<Side>,
}

impl RemoteAllocation {
    /// Allocation id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requested size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Page placements in virtual-address order.
    pub fn placement(&self) -> &[Side] {
        &self.placement
    }

    /// Bytes resident on `side`.
    pub fn bytes_on(&self, side: Side) -> u64 {
        let full_pages = self.placement.iter().filter(|s| **s == side).count() as u64;
        let mut bytes = 0u64;
        let mut remaining = self.bytes;
        for s in &self.placement {
            let page = remaining.min(self.page_bytes);
            if *s == side {
                bytes += page;
            }
            remaining -= page;
        }
        debug_assert!(full_pages * self.page_bytes >= bytes);
        bytes
    }
}

/// Errors from the remote allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough free capacity in the requested placement.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes free under the chosen policy.
        available: u64,
    },
    /// Freed an unknown allocation id.
    UnknownAllocation(u64),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of deviceremote memory: requested {requested} bytes, {available} free"
            ),
            AllocError::UnknownAllocation(id) => write!(f, "unknown allocation id {id}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The driver-side allocator managing one device's two half-memory-node
/// shares (Fig. 8(a): "available resources to the D1 device driver").
///
/// # Examples
///
/// ```
/// use mcdla_memnode::{PagePolicy, RemoteAllocator, Side};
///
/// // 640 GB per half (half of a 1.28 TB LRDIMM node), 2 MiB pages.
/// let mut alloc = RemoteAllocator::new(640_000_000_000, 640_000_000_000, 2 << 20);
/// let a = alloc.malloc_remote(64 << 20, PagePolicy::BwAware).unwrap();
/// // BW_AWARE interleaves pages evenly across both sides.
/// assert_eq!(a.bytes_on(Side::Left), a.bytes_on(Side::Right));
/// ```
#[derive(Debug, Clone)]
pub struct RemoteAllocator {
    page_bytes: u64,
    free: [u64; 2], // [left, right]
    capacity: [u64; 2],
    next_id: u64,
    live: Vec<RemoteAllocation>,
}

impl RemoteAllocator {
    /// Creates an allocator over `left_bytes` + `right_bytes` of remote
    /// capacity with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(left_bytes: u64, right_bytes: u64, page_bytes: u64) -> Self {
        assert!(page_bytes > 0, "page size must be non-zero");
        RemoteAllocator {
            page_bytes,
            free: [left_bytes, right_bytes],
            capacity: [left_bytes, right_bytes],
            next_id: 0,
            live: Vec::new(),
        }
    }

    /// Total free bytes across both sides.
    pub fn free_bytes(&self) -> u64 {
        self.free[0] + self.free[1]
    }

    /// Free bytes on one side.
    pub fn free_on(&self, side: Side) -> u64 {
        self.free[side as usize]
    }

    /// Total capacity across both sides.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity[0] + self.capacity[1]
    }

    /// Live allocations in creation order.
    pub fn allocations(&self) -> &[RemoteAllocation] {
        &self.live
    }

    /// `cudaMallocRemote`: places `bytes` under `policy` (Table I).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the placement does not fit —
    /// LOCAL requires the whole size on one side, BW_AWARE half on each.
    pub fn malloc_remote(
        &mut self,
        bytes: u64,
        policy: PagePolicy,
    ) -> Result<RemoteAllocation, AllocError> {
        let pages = bytes.div_ceil(self.page_bytes).max(1);
        let placement: Vec<Side> = match policy {
            PagePolicy::Local => {
                // Prefer the side with more free space (the driver's choice
                // is not specified by the paper; any single side satisfies
                // the policy).
                let side = if self.free[0] >= self.free[1] {
                    Side::Left
                } else {
                    Side::Right
                };
                let need = pages * self.page_bytes;
                if self.free[side as usize] < need {
                    return Err(AllocError::OutOfMemory {
                        requested: bytes,
                        available: self.free[side as usize],
                    });
                }
                vec![side; pages as usize]
            }
            PagePolicy::BwAware => {
                // Round-robin page interleave: even pages left, odd right.
                let left_pages = pages.div_ceil(2);
                let right_pages = pages / 2;
                if self.free[0] < left_pages * self.page_bytes
                    || self.free[1] < right_pages * self.page_bytes
                {
                    return Err(AllocError::OutOfMemory {
                        requested: bytes,
                        available: self.free_bytes(),
                    });
                }
                (0..pages)
                    .map(|p| if p % 2 == 0 { Side::Left } else { Side::Right })
                    .collect()
            }
        };
        for side in &placement {
            self.free[*side as usize] -= self.page_bytes;
        }
        let alloc = RemoteAllocation {
            id: self.next_id,
            bytes,
            page_bytes: self.page_bytes,
            placement,
        };
        self.next_id += 1;
        self.live.push(alloc.clone());
        Ok(alloc)
    }

    /// `cudaFreeRemote`: releases an allocation (Table I).
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAllocation`] for ids not currently live.
    pub fn free_remote(&mut self, id: u64) -> Result<(), AllocError> {
        let idx = self
            .live
            .iter()
            .position(|a| a.id == id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        let alloc = self.live.swap_remove(idx);
        for side in &alloc.placement {
            self.free[*side as usize] += self.page_bytes;
        }
        Ok(())
    }

    /// Effective transfer bandwidth for an allocation under `policy` given
    /// per-side link bandwidth `side_bandwidth_gbs` (= `N·B/2`), per the
    /// Fig. 10 latency equations.
    pub fn effective_bandwidth_gbs(policy: PagePolicy, side_bandwidth_gbs: f64) -> f64 {
        match policy {
            PagePolicy::Local => side_bandwidth_gbs,
            PagePolicy::BwAware => 2.0 * side_bandwidth_gbs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 2 << 20;

    fn alloc() -> RemoteAllocator {
        RemoteAllocator::new(64 * PAGE, 64 * PAGE, PAGE)
    }

    #[test]
    fn local_places_on_one_side() {
        let mut a = alloc();
        let r = a.malloc_remote(10 * PAGE, PagePolicy::Local).unwrap();
        let left = r.bytes_on(Side::Left);
        let right = r.bytes_on(Side::Right);
        assert!(left == 0 || right == 0, "LOCAL must not straddle sides");
        assert_eq!(left + right, 10 * PAGE);
    }

    #[test]
    fn bw_aware_interleaves_evenly() {
        let mut a = alloc();
        let r = a.malloc_remote(10 * PAGE, PagePolicy::BwAware).unwrap();
        assert_eq!(r.bytes_on(Side::Left), 5 * PAGE);
        assert_eq!(r.bytes_on(Side::Right), 5 * PAGE);
        // Round-robin order.
        assert_eq!(r.placement()[0], Side::Left);
        assert_eq!(r.placement()[1], Side::Right);
    }

    #[test]
    fn odd_page_counts_round_toward_left() {
        let mut a = alloc();
        let r = a.malloc_remote(3 * PAGE, PagePolicy::BwAware).unwrap();
        assert_eq!(r.placement().len(), 3);
        assert_eq!(r.bytes_on(Side::Left), 2 * PAGE);
        assert_eq!(r.bytes_on(Side::Right), PAGE);
    }

    #[test]
    fn sub_page_allocations_consume_one_page() {
        let mut a = alloc();
        let before = a.free_bytes();
        let r = a.malloc_remote(100, PagePolicy::Local).unwrap();
        assert_eq!(a.free_bytes(), before - PAGE);
        assert_eq!(r.bytes(), 100);
        assert_eq!(r.bytes_on(Side::Left) + r.bytes_on(Side::Right), 100);
    }

    #[test]
    fn free_returns_capacity() {
        let mut a = alloc();
        let r = a.malloc_remote(10 * PAGE, PagePolicy::BwAware).unwrap();
        let id = r.id();
        let mid = a.free_bytes();
        a.free_remote(id).unwrap();
        assert_eq!(a.free_bytes(), mid + 10 * PAGE);
        assert_eq!(a.free_remote(id), Err(AllocError::UnknownAllocation(id)));
    }

    #[test]
    fn local_fails_when_no_side_fits_even_if_total_would() {
        let mut a = RemoteAllocator::new(4 * PAGE, 4 * PAGE, PAGE);
        // 6 pages fit in total but not on one side.
        let err = a.malloc_remote(6 * PAGE, PagePolicy::Local).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        // BW_AWARE fits: 3 pages per side.
        assert!(a.malloc_remote(6 * PAGE, PagePolicy::BwAware).is_ok());
    }

    #[test]
    fn fig10_bandwidth_equations() {
        // N = 6 links, B = 25 GB/s: per-side N·B/2 = 75 GB/s.
        let side = 75.0;
        assert_eq!(
            RemoteAllocator::effective_bandwidth_gbs(PagePolicy::Local, side),
            75.0
        );
        assert_eq!(
            RemoteAllocator::effective_bandwidth_gbs(PagePolicy::BwAware, side),
            150.0
        );
    }

    #[test]
    fn exhausting_capacity_reports_out_of_memory() {
        let mut a = RemoteAllocator::new(2 * PAGE, 2 * PAGE, PAGE);
        a.malloc_remote(4 * PAGE, PagePolicy::BwAware).unwrap();
        let err = a.malloc_remote(PAGE, PagePolicy::BwAware).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }
}
