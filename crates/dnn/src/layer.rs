//! Layer taxonomy and per-layer cost characterization.
//!
//! Each layer knows its forward MAC count, weight footprint, and activation
//! footprints — the three quantities the system simulator consumes. Layers
//! are classified as *major* (GEMM-shaped: convolution, fully-connected,
//! recurrent cells) or *cheap* (activation, pooling, normalization, ...).
//! Cheap layers are the ones the memory manager recomputes during
//! backpropagation instead of stashing to the backing store (the paper's
//! footnote 4, following MXNet).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tensor::{DataType, TensorShape};

/// Identifies a layer within a [`crate::Network`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(pub(crate) usize);

impl LayerId {
    /// Index of the layer in the network's topological order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Pooling flavors.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling (includes global average pooling).
    Avg,
}

/// Pointwise non-linearity flavors.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    ReLU,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Recurrent cell flavors, matching the DeepBench suite used in Table III.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RnnCellKind {
    /// Vanilla RNN (one GEMV-shaped gate).
    Vanilla,
    /// Long short-term memory (four gates plus cell state).
    Lstm,
    /// Gated recurrent unit (three gates).
    Gru,
}

impl RnnCellKind {
    /// Number of GEMM-shaped gates evaluated per timestep.
    pub const fn gate_count(self) -> u64 {
        match self {
            RnnCellKind::Vanilla => 1,
            RnnCellKind::Lstm => 4,
            RnnCellKind::Gru => 3,
        }
    }

    /// Per-timestep activations that must be stashed for backpropagation
    /// through time, as a multiple of one `batch × hidden` tensor.
    ///
    /// Vanilla keeps the pre-activation and hidden state; LSTM additionally
    /// keeps four gate outputs and the cell state; GRU keeps three gates and
    /// two candidate states.
    pub const fn stash_factor(self) -> u64 {
        match self {
            RnnCellKind::Vanilla => 2,
            RnnCellKind::Lstm => 6,
            RnnCellKind::Gru => 5,
        }
    }
}

/// The operator a layer applies (Fig. 3's "set of mathematical operations").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Network input placeholder (holds the sample shape; zero cost).
    Input,
    /// 2-D convolution.
    Conv2d {
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
        /// Channel groups (AlexNet's two-tower convolutions use 2).
        groups: usize,
    },
    /// Fully-connected (dense) layer.
    FullyConnected {
        /// Output features.
        out_features: usize,
    },
    /// Spatial pooling.
    Pool2d {
        /// Pooling flavor.
        kind: PoolKind,
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Pointwise non-linearity.
    Activation {
        /// Non-linearity flavor.
        kind: ActivationKind,
    },
    /// Local response normalization (AlexNet/GoogLeNet era).
    Lrn,
    /// Batch normalization (ResNet era).
    BatchNorm,
    /// Dropout regularization.
    Dropout,
    /// Channel-wise concatenation of all inputs (inception modules).
    Concat,
    /// Element-wise addition of two inputs (residual connections).
    EltwiseAdd,
    /// Softmax classifier head.
    Softmax,
    /// One unrolled recurrent timestep.
    RnnCell {
        /// Cell flavor.
        kind: RnnCellKind,
        /// Hidden state width.
        hidden: usize,
        /// Input feature width (often equal to `hidden` in DeepBench).
        input: usize,
    },
}

impl LayerKind {
    /// True for layers the memory manager recomputes during backpropagation
    /// rather than offloading their inputs (paper footnote 4: "layers that
    /// have short computation time (e.g., activation layers, pooling
    /// layers, ...)").
    pub fn is_cheap(&self) -> bool {
        matches!(
            self,
            LayerKind::Pool2d { .. }
                | LayerKind::Activation { .. }
                | LayerKind::Lrn
                | LayerKind::BatchNorm
                | LayerKind::Dropout
                | LayerKind::Concat
                | LayerKind::EltwiseAdd
                | LayerKind::Softmax
        )
    }

    /// True for GEMM-shaped layers with trainable weights.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d { .. } | LayerKind::FullyConnected { .. } | LayerKind::RnnCell { .. }
        )
    }
}

/// One node of a network DAG, with resolved input/output shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    pub(crate) id: LayerId,
    pub(crate) name: String,
    pub(crate) kind: LayerKind,
    pub(crate) inputs: Vec<LayerId>,
    pub(crate) in_shape: TensorShape,
    pub(crate) out_shape: TensorShape,
    pub(crate) counts_toward_depth: bool,
    /// Weight-sharing group: layers with the same group reference one
    /// physical weight tensor (unrolled RNN timesteps). Defaults to the
    /// layer's own id (no sharing).
    pub(crate) weight_group: usize,
}

impl Layer {
    /// The layer's id within its network.
    pub fn id(&self) -> LayerId {
        self.id
    }

    /// Human-readable layer name (e.g. `"conv3/3x3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator this layer applies.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Ids of the layers feeding this one.
    pub fn inputs(&self) -> &[LayerId] {
        &self.inputs
    }

    /// Per-sample input shape (for multi-input layers, the combined shape).
    pub fn input_shape(&self) -> &TensorShape {
        &self.in_shape
    }

    /// Per-sample output shape.
    pub fn output_shape(&self) -> &TensorShape {
        &self.out_shape
    }

    /// Whether this layer counts toward the paper's Table III depth
    /// (projection shortcuts and plumbing layers do not).
    pub fn counts_toward_depth(&self) -> bool {
        self.counts_toward_depth
    }

    /// True for layers recomputed instead of offloaded (see
    /// [`LayerKind::is_cheap`]).
    pub fn is_cheap(&self) -> bool {
        self.kind.is_cheap()
    }

    /// Weight-sharing group id. Unrolled recurrent timesteps share one
    /// physical weight tensor and therefore one group; feed-forward layers
    /// each form their own group.
    pub fn weight_group(&self) -> usize {
        self.weight_group
    }

    /// True for layers with trainable weights.
    pub fn has_weights(&self) -> bool {
        self.kind.has_weights()
    }

    /// Forward-pass multiply-accumulate operations for a batch of `batch`
    /// samples. Cheap layers report zero MACs — their cost is memory-bound
    /// and captured by [`Layer::forward_bytes_touched`].
    pub fn forward_macs(&self, batch: u64) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                groups,
                ..
            } => {
                let (oh, ow) = self.out_shape.spatial();
                let in_ch = self.in_shape.channels();
                let macs_per_sample = (oh as u64)
                    * (ow as u64)
                    * (out_channels as u64)
                    * (kernel as u64)
                    * (kernel as u64)
                    * (in_ch as u64 / groups as u64);
                macs_per_sample * batch
            }
            LayerKind::FullyConnected { out_features } => {
                self.in_shape.elements() * out_features as u64 * batch
            }
            LayerKind::RnnCell {
                kind,
                hidden,
                input,
            } => {
                // Per gate: one input GEMM (input×hidden) and one recurrent
                // GEMM (hidden×hidden).
                let per_gate = (input as u64 + hidden as u64) * hidden as u64;
                kind.gate_count() * per_gate * batch
            }
            _ => 0,
        }
    }

    /// Backward-pass MACs: the dX GEMM plus the dW GEMM, each the size of
    /// the forward GEMM (standard 2× rule for backpropagation).
    pub fn backward_macs(&self, batch: u64) -> u64 {
        2 * self.forward_macs(batch)
    }

    /// Trainable parameter count (weights + biases).
    pub fn weight_params(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                groups,
                ..
            } => {
                let in_ch = self.in_shape.channels() as u64;
                out_channels as u64 * kernel as u64 * kernel as u64 * (in_ch / groups as u64)
                    + out_channels as u64
            }
            LayerKind::FullyConnected { out_features } => {
                self.in_shape.elements() * out_features as u64 + out_features as u64
            }
            LayerKind::RnnCell {
                kind,
                hidden,
                input,
            } => {
                kind.gate_count() * ((input as u64 + hidden as u64) * hidden as u64 + hidden as u64)
            }
            _ => 0,
        }
    }

    /// Weight bytes at the given precision.
    pub fn weight_bytes(&self, dtype: DataType) -> u64 {
        self.weight_params() * dtype.size_bytes()
    }

    /// Input feature-map (X) bytes for a batch — the tensor stashed to the
    /// backing store after its last forward use.
    pub fn input_bytes(&self, batch: u64, dtype: DataType) -> u64 {
        self.in_shape.bytes(dtype) * batch
    }

    /// Output feature-map (Y) bytes for a batch.
    pub fn output_bytes(&self, batch: u64, dtype: DataType) -> u64 {
        self.out_shape.bytes(dtype) * batch
    }

    /// Bytes this layer must stash for backpropagation. For most layers this
    /// is the input feature map X; recurrent cells additionally stash their
    /// gate activations ([`RnnCellKind::stash_factor`]).
    pub fn stash_bytes(&self, batch: u64, dtype: DataType) -> u64 {
        match self.kind {
            LayerKind::RnnCell { kind, hidden, .. } => {
                (hidden as u64) * kind.stash_factor() * batch * dtype.size_bytes()
            }
            LayerKind::Input => 0,
            _ => self.input_bytes(batch, dtype),
        }
    }

    /// Bytes moved through device memory by the forward pass (roofline
    /// memory term): read X and W, write Y.
    pub fn forward_bytes_touched(&self, batch: u64, dtype: DataType) -> u64 {
        let io = self.input_bytes(batch, dtype) + self.output_bytes(batch, dtype);
        io + self.weight_bytes(dtype)
    }

    /// Bytes moved by the backward pass: read dY, X, W; write dX, dW.
    pub fn backward_bytes_touched(&self, batch: u64, dtype: DataType) -> u64 {
        2 * self.input_bytes(batch, dtype)
            + self.output_bytes(batch, dtype)
            + 2 * self.weight_bytes(dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> Layer {
        // AlexNet conv1: 3x227x227 -> 96 kernels 11x11 stride 4 -> 96x55x55.
        Layer {
            id: LayerId(1),
            name: "conv1".into(),
            kind: LayerKind::Conv2d {
                out_channels: 96,
                kernel: 11,
                stride: 4,
                padding: 0,
                groups: 1,
            },
            inputs: vec![LayerId(0)],
            in_shape: TensorShape::chw(3, 227, 227),
            out_shape: TensorShape::chw(96, 55, 55),
            counts_toward_depth: true,
            weight_group: 0,
        }
    }

    #[test]
    fn conv_macs_match_hand_count() {
        let l = conv_layer();
        // 55*55*96 output elements, 11*11*3 MACs each.
        assert_eq!(l.forward_macs(1), 55 * 55 * 96 * 11 * 11 * 3);
        assert_eq!(l.backward_macs(1), 2 * l.forward_macs(1));
        assert_eq!(l.forward_macs(2), 2 * l.forward_macs(1));
    }

    #[test]
    fn conv_params_match_hand_count() {
        let l = conv_layer();
        assert_eq!(l.weight_params(), 96 * 11 * 11 * 3 + 96);
        assert_eq!(l.weight_bytes(DataType::F32), (96 * 11 * 11 * 3 + 96) * 4);
    }

    #[test]
    fn grouped_conv_divides_weights_and_macs() {
        let mut l = conv_layer();
        l.kind = LayerKind::Conv2d {
            out_channels: 96,
            kernel: 11,
            stride: 4,
            padding: 0,
            groups: 3,
        };
        assert_eq!(l.weight_params(), 96 * 11 * 11 + 96);
        assert_eq!(l.forward_macs(1), 55 * 55 * 96 * 11 * 11);
    }

    #[test]
    fn fc_costs() {
        let l = Layer {
            id: LayerId(2),
            name: "fc6".into(),
            kind: LayerKind::FullyConnected { out_features: 4096 },
            inputs: vec![LayerId(1)],
            in_shape: TensorShape::vector(9216),
            out_shape: TensorShape::vector(4096),
            counts_toward_depth: true,
            weight_group: 0,
        };
        assert_eq!(l.forward_macs(1), 9216 * 4096);
        assert_eq!(l.weight_params(), 9216 * 4096 + 4096);
        assert_eq!(l.input_bytes(64, DataType::F32), 9216 * 4 * 64);
    }

    #[test]
    fn lstm_cell_costs() {
        let l = Layer {
            id: LayerId(3),
            name: "lstm_t0".into(),
            kind: LayerKind::RnnCell {
                kind: RnnCellKind::Lstm,
                hidden: 512,
                input: 512,
            },
            inputs: vec![LayerId(2)],
            in_shape: TensorShape::vector(512),
            out_shape: TensorShape::vector(512),
            counts_toward_depth: true,
            weight_group: 0,
        };
        assert_eq!(l.forward_macs(1), 4 * (512 + 512) * 512);
        assert_eq!(l.weight_params(), 4 * ((512 + 512) * 512 + 512));
        // Stash: 6 tensors of batch x hidden.
        assert_eq!(l.stash_bytes(16, DataType::F32), 6 * 512 * 16 * 4);
    }

    #[test]
    fn cheap_layers_have_no_macs_or_weights() {
        let l = Layer {
            id: LayerId(4),
            name: "relu".into(),
            kind: LayerKind::Activation {
                kind: ActivationKind::ReLU,
            },
            inputs: vec![LayerId(3)],
            in_shape: TensorShape::vector(4096),
            out_shape: TensorShape::vector(4096),
            counts_toward_depth: false,
            weight_group: 0,
        };
        assert!(l.is_cheap());
        assert!(!l.has_weights());
        assert_eq!(l.forward_macs(64), 0);
        assert_eq!(l.weight_params(), 0);
        assert!(l.forward_bytes_touched(64, DataType::F32) > 0);
    }

    #[test]
    fn gate_counts_and_stash_factors() {
        assert_eq!(RnnCellKind::Vanilla.gate_count(), 1);
        assert_eq!(RnnCellKind::Lstm.gate_count(), 4);
        assert_eq!(RnnCellKind::Gru.gate_count(), 3);
        assert!(RnnCellKind::Lstm.stash_factor() > RnnCellKind::Vanilla.stash_factor());
    }
}
