//! Network DAGs and their construction.
//!
//! A [`Network`] is the compile-time artifact the memory-virtualization
//! runtime analyzes (§II-B: "leveraging the user-level DNN topology graph as
//! means to extract a compile-time data dependency information ...
//! encapsulated as a direct acyclic graph (DAG)"). Layers are stored in
//! topological order by construction — the builder only lets a layer consume
//! previously-defined layers, so cycles cannot be expressed.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::layer::{ActivationKind, Layer, LayerId, LayerKind, PoolKind, RnnCellKind};
use crate::tensor::{DataType, TensorShape};

/// Application domain, as listed in Table III.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// ImageNet-style CNN classification.
    ImageRecognition,
    /// DeepSpeech-style acoustic models.
    SpeechRecognition,
    /// Sequence-to-sequence translation.
    MachineTranslation,
    /// Next-token language models.
    LanguageModeling,
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Application::ImageRecognition => "Image recognition",
            Application::SpeechRecognition => "Speech recognition",
            Application::MachineTranslation => "Machine translation",
            Application::LanguageModeling => "Language modeling",
        };
        f.write_str(s)
    }
}

/// Errors produced while constructing a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A layer referenced an id that does not exist yet.
    UnknownLayer(LayerId),
    /// Layer inputs have incompatible shapes (e.g. mismatched element-wise add).
    ShapeMismatch {
        /// The offending layer's name.
        layer: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A structurally invalid parameter (zero kernel, zero stride, ...).
    InvalidParameter {
        /// The offending layer's name.
        layer: String,
        /// Explanation of the invalid parameter.
        detail: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownLayer(id) => write!(f, "unknown layer {id}"),
            BuildError::ShapeMismatch { layer, detail } => {
                write!(f, "shape mismatch at layer '{layer}': {detail}")
            }
            BuildError::InvalidParameter { layer, detail } => {
                write!(f, "invalid parameter at layer '{layer}': {detail}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A deep neural network expressed as a DAG of [`Layer`]s in topological
/// order.
///
/// # Examples
///
/// ```
/// use mcdla_dnn::{Application, NetworkBuilder, TensorShape};
///
/// # fn main() -> Result<(), mcdla_dnn::BuildError> {
/// let mut b = NetworkBuilder::new("tiny", Application::ImageRecognition);
/// let x = b.input(TensorShape::chw(3, 32, 32));
/// let c = b.conv("conv1", x, 16, 3, 1, 1)?;
/// let r = b.relu("relu1", c)?;
/// let f = b.fully_connected("fc", r, 10)?;
/// let net = b.build();
/// assert_eq!(net.weighted_depth(), 2); // conv1 + fc
/// assert!(net.layer(f).output_shape().elements() == 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    application: Application,
    layers: Vec<Layer>,
}

impl Network {
    /// Network name (e.g. `"VGG-E"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application domain (Table III's second column).
    pub fn application(&self) -> Application {
        self.application
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Looks up a layer by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.index()]
    }

    /// Total layer count including plumbing layers (activations, pools, ...).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of depth-counting weighted layers — the Table III "# of
    /// layers" figure (8 for AlexNet, 58 for GoogLeNet, 19 for VGG-E, 34 for
    /// ResNet).
    pub fn weighted_depth(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.counts_toward_depth() && l.has_weights())
            .count()
    }

    /// Layers owning a *physical* weight tensor: the first member of each
    /// weight-sharing group. Unrolled RNN timesteps share one tensor, so
    /// only timestep 0 appears here.
    pub fn unique_weight_layers(&self) -> impl Iterator<Item = &Layer> + '_ {
        self.layers
            .iter()
            .filter(|l| l.has_weights() && l.weight_group() == l.id().index())
    }

    /// Total trainable parameters (weight-sharing groups counted once).
    pub fn total_params(&self) -> u64 {
        self.unique_weight_layers().map(Layer::weight_params).sum()
    }

    /// Total weight bytes at a precision (weight-sharing groups counted
    /// once).
    pub fn total_weight_bytes(&self, dtype: DataType) -> u64 {
        self.unique_weight_layers()
            .map(|l| l.weight_bytes(dtype))
            .sum()
    }

    /// Total forward MACs for a batch.
    pub fn total_forward_macs(&self, batch: u64) -> u64 {
        self.layers.iter().map(|l| l.forward_macs(batch)).sum()
    }

    /// For every layer, the topological position of its **last forward
    /// consumer** — the point after which its output may be offloaded to the
    /// backing store. Terminal layers consume themselves.
    pub fn last_consumer(&self) -> Vec<LayerId> {
        let mut last: Vec<LayerId> = (0..self.layers.len()).map(LayerId).collect();
        for l in &self.layers {
            for &inp in l.inputs() {
                if l.id() > last[inp.index()] {
                    last[inp.index()] = l.id();
                }
            }
        }
        last
    }

    /// The memory cost of training this network at `batch`, broken into the
    /// components of §II-B.
    pub fn footprint(&self, batch: u64, dtype: DataType) -> MemoryFootprint {
        let weights = self.total_weight_bytes(dtype);
        let mut stashed = 0u64;
        let mut peak_live = 0u64;
        for l in &self.layers {
            stashed += l.stash_bytes(batch, dtype);
            let live = l.input_bytes(batch, dtype) + l.output_bytes(batch, dtype);
            peak_live = peak_live.max(live);
        }
        MemoryFootprint {
            weight_bytes: weights,
            gradient_bytes: weights,
            stashed_activation_bytes: stashed,
            peak_live_bytes: peak_live,
        }
    }

    /// Sum of weight-gradient bytes — the data-parallel synchronization
    /// volume per iteration (one all-reduce of dW per weighted layer).
    pub fn total_gradient_bytes(&self, dtype: DataType) -> u64 {
        self.total_weight_bytes(dtype)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.1}M params)",
            self.name,
            self.weighted_depth(),
            self.total_params() as f64 / 1e6
        )
    }
}

/// Training-time memory cost decomposition (§II-B: memory scales O(N) with
/// depth because every layer's X must be kept for backpropagation).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Model weights W.
    pub weight_bytes: u64,
    /// Weight gradients dW (same size as W).
    pub gradient_bytes: u64,
    /// All stashed feature maps X across the network — the O(N) term.
    pub stashed_activation_bytes: u64,
    /// Largest single layer's live X+Y working set — the O(1) floor that
    /// virtualization can reduce the activation footprint to.
    pub peak_live_bytes: u64,
}

impl MemoryFootprint {
    /// Total bytes without memory virtualization: O(N) activations plus
    /// weights and gradients.
    pub fn total_unvirtualized(&self) -> u64 {
        self.weight_bytes + self.gradient_bytes + self.stashed_activation_bytes
    }

    /// Resident bytes with virtualization: only the peak live working set
    /// plus weights and gradients stay in device memory.
    pub fn total_virtualized(&self) -> u64 {
        self.weight_bytes + self.gradient_bytes + self.peak_live_bytes
    }
}

/// Incremental [`Network`] constructor.
///
/// Every method that adds a layer takes the producing layers' ids and
/// resolves the new layer's shapes immediately, returning its id. See
/// [`Network`] for a usage example.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    application: Application,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a network with the given name and application domain.
    pub fn new(name: impl Into<String>, application: Application) -> Self {
        NetworkBuilder {
            name: name.into(),
            application,
            layers: Vec::new(),
        }
    }

    /// Adds the input placeholder carrying the per-sample shape.
    pub fn input(&mut self, shape: TensorShape) -> LayerId {
        let id = LayerId(self.layers.len());
        self.layers.push(Layer {
            id,
            name: "input".into(),
            kind: LayerKind::Input,
            inputs: Vec::new(),
            in_shape: shape.clone(),
            out_shape: shape,
            counts_toward_depth: false,
            weight_group: id.0,
        });
        id
    }

    fn shape_of(&self, id: LayerId) -> Result<&TensorShape, BuildError> {
        self.layers
            .get(id.index())
            .map(|l| &l.out_shape)
            .ok_or(BuildError::UnknownLayer(id))
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: Vec<LayerId>,
        in_shape: TensorShape,
        out_shape: TensorShape,
        counts: bool,
    ) -> LayerId {
        let id = LayerId(self.layers.len());
        self.layers.push(Layer {
            id,
            name: name.into(),
            kind,
            inputs,
            in_shape,
            out_shape,
            counts_toward_depth: counts,
            weight_group: id.0,
        });
        id
    }

    /// Adds a convolution (`groups = 1`). See [`NetworkBuilder::conv_grouped`].
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] for unknown inputs or invalid geometry.
    pub fn conv(
        &mut self,
        name: &str,
        input: LayerId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<LayerId, BuildError> {
        self.conv_grouped(name, input, out_channels, kernel, stride, padding, 1)
    }

    /// Adds a grouped convolution (AlexNet's original two-tower layers).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidParameter`] for zero kernel/stride/
    /// groups or non-dividing group counts, [`BuildError::ShapeMismatch`]
    /// when the window does not fit, and [`BuildError::UnknownLayer`] for a
    /// bad input id.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        &mut self,
        name: &str,
        input: LayerId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Result<LayerId, BuildError> {
        if kernel == 0 || stride == 0 || groups == 0 || out_channels == 0 {
            return Err(BuildError::InvalidParameter {
                layer: name.into(),
                detail: "kernel, stride, groups, out_channels must be non-zero".into(),
            });
        }
        let in_shape = self.shape_of(input)?.clone();
        let (c, h, w) = match in_shape {
            TensorShape::Chw { c, h, w } => (c, h, w),
            TensorShape::Vector { .. } => {
                return Err(BuildError::ShapeMismatch {
                    layer: name.into(),
                    detail: "convolution requires a CHW input".into(),
                })
            }
        };
        if !c.is_multiple_of(groups) || !out_channels.is_multiple_of(groups) {
            return Err(BuildError::InvalidParameter {
                layer: name.into(),
                detail: format!("groups {groups} must divide channels {c} and {out_channels}"),
            });
        }
        let (oh, ow) =
            conv_out(h, w, kernel, stride, padding).ok_or_else(|| BuildError::ShapeMismatch {
                layer: name.into(),
                detail: format!("window {kernel}/{stride}/{padding} does not fit {h}x{w}"),
            })?;
        Ok(self.push(
            name,
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            },
            vec![input],
            TensorShape::chw(c, h, w),
            TensorShape::chw(out_channels, oh, ow),
            true,
        ))
    }

    /// Like [`NetworkBuilder::conv`], but excluded from the Table III depth
    /// count — used for residual projection shortcuts.
    ///
    /// # Errors
    ///
    /// Same as [`NetworkBuilder::conv_grouped`].
    pub fn conv_shortcut(
        &mut self,
        name: &str,
        input: LayerId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<LayerId, BuildError> {
        let id = self.conv_grouped(name, input, out_channels, kernel, stride, padding, 1)?;
        self.layers[id.index()].counts_toward_depth = false;
        Ok(id)
    }

    /// Adds a pooling layer with Caffe-style ceil-mode output geometry
    /// (AlexNet/GoogLeNet convention). See [`NetworkBuilder::pool_floor`]
    /// for the floor-mode variant used by ResNet.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] for unknown inputs or invalid geometry.
    pub fn pool(
        &mut self,
        name: &str,
        input: LayerId,
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<LayerId, BuildError> {
        self.pool_with_mode(name, input, kind, kernel, stride, padding, true)
    }

    /// Adds a pooling layer with floor-mode output geometry (the ResNet /
    /// modern-framework convention).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] for unknown inputs or invalid geometry.
    pub fn pool_floor(
        &mut self,
        name: &str,
        input: LayerId,
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<LayerId, BuildError> {
        self.pool_with_mode(name, input, kind, kernel, stride, padding, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn pool_with_mode(
        &mut self,
        name: &str,
        input: LayerId,
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        padding: usize,
        ceil_mode: bool,
    ) -> Result<LayerId, BuildError> {
        if kernel == 0 || stride == 0 {
            return Err(BuildError::InvalidParameter {
                layer: name.into(),
                detail: "kernel and stride must be non-zero".into(),
            });
        }
        let in_shape = self.shape_of(input)?.clone();
        let (c, h, w) = match in_shape {
            TensorShape::Chw { c, h, w } => (c, h, w),
            TensorShape::Vector { .. } => {
                return Err(BuildError::ShapeMismatch {
                    layer: name.into(),
                    detail: "pooling requires a CHW input".into(),
                })
            }
        };
        let (oh, ow) = pool_out(h, w, kernel, stride, padding, ceil_mode).ok_or_else(|| {
            BuildError::ShapeMismatch {
                layer: name.into(),
                detail: format!("window {kernel}/{stride}/{padding} does not fit {h}x{w}"),
            }
        })?;
        Ok(self.push(
            name,
            LayerKind::Pool2d {
                kind,
                kernel,
                stride,
                padding,
            },
            vec![input],
            TensorShape::chw(c, h, w),
            TensorShape::chw(c, oh, ow),
            false,
        ))
    }

    /// Adds a global average pool, collapsing spatial dims to a vector.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] for an unknown or non-CHW input.
    pub fn global_avg_pool(&mut self, name: &str, input: LayerId) -> Result<LayerId, BuildError> {
        let in_shape = self.shape_of(input)?.clone();
        let (c, h, w) = match in_shape {
            TensorShape::Chw { c, h, w } => (c, h, w),
            TensorShape::Vector { .. } => {
                return Err(BuildError::ShapeMismatch {
                    layer: name.into(),
                    detail: "global pooling requires a CHW input".into(),
                })
            }
        };
        Ok(self.push(
            name,
            LayerKind::Pool2d {
                kind: PoolKind::Avg,
                kernel: h.max(w),
                stride: 1,
                padding: 0,
            },
            vec![input],
            TensorShape::chw(c, h, w),
            TensorShape::vector(c),
            false,
        ))
    }

    /// Adds a fully-connected layer (flattens CHW inputs automatically).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::UnknownLayer`] / invalid parameters.
    pub fn fully_connected(
        &mut self,
        name: &str,
        input: LayerId,
        out_features: usize,
    ) -> Result<LayerId, BuildError> {
        if out_features == 0 {
            return Err(BuildError::InvalidParameter {
                layer: name.into(),
                detail: "out_features must be non-zero".into(),
            });
        }
        let in_shape = self.shape_of(input)?.flattened();
        Ok(self.push(
            name,
            LayerKind::FullyConnected { out_features },
            vec![input],
            in_shape,
            TensorShape::vector(out_features),
            true,
        ))
    }

    /// Adds a ReLU activation.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::UnknownLayer`].
    pub fn relu(&mut self, name: &str, input: LayerId) -> Result<LayerId, BuildError> {
        self.activation(name, input, ActivationKind::ReLU)
    }

    /// Adds a pointwise activation.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::UnknownLayer`].
    pub fn activation(
        &mut self,
        name: &str,
        input: LayerId,
        kind: ActivationKind,
    ) -> Result<LayerId, BuildError> {
        let s = self.shape_of(input)?.clone();
        Ok(self.push(
            name,
            LayerKind::Activation { kind },
            vec![input],
            s.clone(),
            s,
            false,
        ))
    }

    /// Adds a shape-preserving plumbing layer (LRN, batch-norm, dropout,
    /// softmax).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::UnknownLayer`].
    pub fn unary(
        &mut self,
        name: &str,
        input: LayerId,
        kind: LayerKind,
    ) -> Result<LayerId, BuildError> {
        let s = self.shape_of(input)?.clone();
        Ok(self.push(name, kind, vec![input], s.clone(), s, false))
    }

    /// Concatenates inputs channel-wise (inception modules).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ShapeMismatch`] for mismatched spatial sizes,
    /// [`BuildError::InvalidParameter`] for fewer than two inputs.
    pub fn concat(&mut self, name: &str, inputs: &[LayerId]) -> Result<LayerId, BuildError> {
        if inputs.len() < 2 {
            return Err(BuildError::InvalidParameter {
                layer: name.into(),
                detail: "concat requires at least two inputs".into(),
            });
        }
        let first = self.shape_of(inputs[0])?.clone();
        let (h0, w0) = first.spatial();
        let mut channels = 0usize;
        for &i in inputs {
            let s = self.shape_of(i)?;
            let (h, w) = s.spatial();
            if (h, w) != (h0, w0) {
                return Err(BuildError::ShapeMismatch {
                    layer: name.into(),
                    detail: format!("spatial {h}x{w} != {h0}x{w0}"),
                });
            }
            channels += s.channels();
        }
        Ok(self.push(
            name,
            LayerKind::Concat,
            inputs.to_vec(),
            TensorShape::chw(channels, h0, w0),
            TensorShape::chw(channels, h0, w0),
            false,
        ))
    }

    /// Element-wise addition of two inputs (residual connections).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ShapeMismatch`] when shapes differ.
    pub fn add(&mut self, name: &str, a: LayerId, b: LayerId) -> Result<LayerId, BuildError> {
        let sa = self.shape_of(a)?.clone();
        let sb = self.shape_of(b)?.clone();
        if sa != sb {
            return Err(BuildError::ShapeMismatch {
                layer: name.into(),
                detail: format!("{sa} != {sb}"),
            });
        }
        Ok(self.push(
            name,
            LayerKind::EltwiseAdd,
            vec![a, b],
            sa.clone(),
            sa,
            false,
        ))
    }

    /// Adds one unrolled recurrent timestep consuming the previous hidden
    /// state (and implicitly the timestep input of width `input`).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::UnknownLayer`] / invalid sizes.
    pub fn rnn_cell(
        &mut self,
        name: &str,
        prev: LayerId,
        kind: RnnCellKind,
        hidden: usize,
        input: usize,
    ) -> Result<LayerId, BuildError> {
        if hidden == 0 || input == 0 {
            return Err(BuildError::InvalidParameter {
                layer: name.into(),
                detail: "hidden and input widths must be non-zero".into(),
            });
        }
        let _ = self.shape_of(prev)?;
        Ok(self.push(
            name,
            LayerKind::RnnCell {
                kind,
                hidden,
                input,
            },
            vec![prev],
            TensorShape::vector(input + hidden),
            TensorShape::vector(hidden),
            true,
        ))
    }

    /// Declares that `layer` reuses the physical weight tensor of `with`
    /// (unrolled RNN timesteps). Parameter totals and gradient
    /// synchronization then count the shared tensor once.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownLayer`] for bad ids and
    /// [`BuildError::ShapeMismatch`] if the two layers' kinds differ (they
    /// could not share a tensor).
    pub fn share_weights(&mut self, layer: LayerId, with: LayerId) -> Result<(), BuildError> {
        if with.index() >= self.layers.len() {
            return Err(BuildError::UnknownLayer(with));
        }
        if layer.index() >= self.layers.len() {
            return Err(BuildError::UnknownLayer(layer));
        }
        if self.layers[layer.index()].kind != self.layers[with.index()].kind {
            return Err(BuildError::ShapeMismatch {
                layer: self.layers[layer.index()].name.clone(),
                detail: "weight sharing requires identical layer kinds".into(),
            });
        }
        let group = self.layers[with.index()].weight_group;
        self.layers[layer.index()].weight_group = group;
        Ok(())
    }

    /// Finishes construction.
    pub fn build(self) -> Network {
        Network {
            name: self.name,
            application: self.application,
            layers: self.layers,
        }
    }
}

fn conv_out(h: usize, w: usize, k: usize, s: usize, p: usize) -> Option<(usize, usize)> {
    let oh = (h + 2 * p).checked_sub(k)? / s + 1;
    let ow = (w + 2 * p).checked_sub(k)? / s + 1;
    Some((oh, ow))
}

fn pool_out(
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
    ceil: bool,
) -> Option<(usize, usize)> {
    // Ceil-mode matches Caffe-era conventions used by AlexNet/GoogLeNet
    // (3x3 stride-2 pooling of 55 -> 27); floor-mode matches ResNet
    // (3x3 stride-2 pad-1 pooling of 112 -> 56).
    let span_h = (h + 2 * p).checked_sub(k)?;
    let span_w = (w + 2 * p).checked_sub(k)?;
    let (oh, ow) = if ceil {
        (span_h.div_ceil(s) + 1, span_w.div_ceil(s) + 1)
    } else {
        (span_h / s + 1, span_w / s + 1)
    };
    Some((oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new("tiny", Application::ImageRecognition);
        let x = b.input(TensorShape::chw(3, 32, 32));
        let c1 = b.conv("c1", x, 8, 3, 1, 1).unwrap();
        let r1 = b.relu("r1", c1).unwrap();
        let p1 = b.pool("p1", r1, PoolKind::Max, 2, 2, 0).unwrap();
        let f = b.fully_connected("fc", p1, 10).unwrap();
        let _s = b.unary("sm", f, LayerKind::Softmax).unwrap();
        b.build()
    }

    #[test]
    fn shapes_propagate() {
        let n = tiny();
        assert_eq!(n.layer_count(), 6);
        assert_eq!(n.weighted_depth(), 2);
        assert_eq!(n.layers()[1].output_shape(), &TensorShape::chw(8, 32, 32));
        assert_eq!(n.layers()[3].output_shape(), &TensorShape::chw(8, 16, 16));
        assert_eq!(
            n.layers()[4].input_shape(),
            &TensorShape::vector(8 * 16 * 16)
        );
    }

    #[test]
    fn conv_output_geometry() {
        assert_eq!(conv_out(227, 227, 11, 4, 0), Some((55, 55)));
        assert_eq!(conv_out(27, 27, 5, 1, 2), Some((27, 27)));
        assert_eq!(conv_out(224, 224, 3, 1, 1), Some((224, 224)));
        assert_eq!(conv_out(2, 2, 5, 1, 0), None);
    }

    #[test]
    fn pool_output_geometry_modes() {
        assert_eq!(pool_out(55, 55, 3, 2, 0, true), Some((27, 27)));
        assert_eq!(pool_out(13, 13, 3, 2, 0, true), Some((6, 6)));
        // ResNet stem: 112 -> 56 only in floor mode.
        assert_eq!(pool_out(112, 112, 3, 2, 1, false), Some((56, 56)));
        assert_eq!(pool_out(112, 112, 3, 2, 1, true), Some((57, 57)));
    }

    #[test]
    fn last_consumer_handles_branches() {
        let mut b = NetworkBuilder::new("branchy", Application::ImageRecognition);
        let x = b.input(TensorShape::chw(4, 8, 8));
        let a = b.conv("a", x, 4, 3, 1, 1).unwrap();
        let c = b.conv("c", x, 4, 3, 1, 1).unwrap(); // second consumer of x
        let d = b.add("d", a, c).unwrap();
        let n = b.build();
        let last = n.last_consumer();
        // x's last consumer is the later conv `c`.
        assert_eq!(last[x.index()], c);
        // a and c are both consumed by d.
        assert_eq!(last[a.index()], d);
        assert_eq!(last[c.index()], d);
        // d is terminal: its own id.
        assert_eq!(last[d.index()], d);
    }

    #[test]
    fn footprint_scales_with_depth_and_batch() {
        let n = tiny();
        let f1 = n.footprint(1, DataType::F32);
        let f64b = n.footprint(64, DataType::F32);
        assert_eq!(
            f64b.stashed_activation_bytes,
            64 * f1.stashed_activation_bytes
        );
        assert_eq!(f64b.weight_bytes, f1.weight_bytes);
        assert!(f64b.total_virtualized() < f64b.total_unvirtualized());
    }

    #[test]
    fn builder_rejects_bad_construction() {
        let mut b = NetworkBuilder::new("bad", Application::ImageRecognition);
        let x = b.input(TensorShape::chw(3, 8, 8));
        assert!(matches!(
            b.conv("c", x, 0, 3, 1, 1),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.conv("c", x, 8, 16, 1, 0),
            Err(BuildError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            b.conv("c", LayerId(99), 8, 3, 1, 1),
            Err(BuildError::UnknownLayer(_))
        ));
        assert!(matches!(
            b.conv_grouped("c", x, 8, 3, 1, 1, 2),
            Err(BuildError::InvalidParameter { .. }) // 3 channels % 2 groups
        ));
        let a = b.conv("a", x, 4, 3, 1, 1).unwrap();
        let p = b.pool("p", a, PoolKind::Max, 2, 2, 0).unwrap();
        assert!(matches!(
            b.add("bad-add", a, p),
            Err(BuildError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            b.concat("one", &[a]),
            Err(BuildError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rnn_chain_builds() {
        let mut b = NetworkBuilder::new("rnn", Application::SpeechRecognition);
        let mut prev = b.input(TensorShape::vector(1760));
        for t in 0..50 {
            prev = b
                .rnn_cell(&format!("t{t}"), prev, RnnCellKind::Vanilla, 1760, 1760)
                .unwrap();
        }
        let n = b.build();
        assert_eq!(n.weighted_depth(), 50);
        assert_eq!(n.layer_count(), 51);
    }

    #[test]
    fn display_summarizes() {
        let n = tiny();
        let s = n.to_string();
        assert!(s.contains("tiny"), "{s}");
        assert!(s.contains("2 layers"), "{s}");
    }
}
