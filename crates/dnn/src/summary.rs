//! Per-layer and per-network cost summaries.
//!
//! The quantities the paper's §V-A bottleneck analysis reasons about —
//! compute intensity, feature-map-to-weight ratios, synchronization volume
//! per unit compute — exposed as a queryable summary table.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::network::Network;
use crate::tensor::DataType;

/// One layer's cost summary at a batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Operator description.
    pub kind: String,
    /// Forward MACs.
    pub forward_macs: u64,
    /// Weight bytes.
    pub weight_bytes: u64,
    /// Stash (offloadable activation) bytes.
    pub stash_bytes: u64,
    /// Arithmetic intensity: forward MACs per byte touched (0 for
    /// memory-only layers).
    pub macs_per_byte: f64,
}

impl LayerSummary {
    fn of(layer: &Layer, batch: u64, dtype: DataType) -> Self {
        let macs = layer.forward_macs(batch);
        let touched = layer.forward_bytes_touched(batch, dtype);
        LayerSummary {
            name: layer.name().to_owned(),
            kind: format!("{:?}", layer.kind()),
            forward_macs: macs,
            weight_bytes: layer.weight_bytes(dtype),
            stash_bytes: layer.stash_bytes(batch, dtype),
            macs_per_byte: if touched > 0 {
                macs as f64 / touched as f64
            } else {
                0.0
            },
        }
    }
}

/// Whole-network cost summary at a batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Network name.
    pub name: String,
    /// Per-layer rows in topological order.
    pub layers: Vec<LayerSummary>,
    /// Total forward MACs.
    pub total_forward_macs: u64,
    /// Total physical weight bytes.
    pub total_weight_bytes: u64,
    /// Total stash bytes (the overlay traffic, one direction).
    pub total_stash_bytes: u64,
}

impl NetworkSummary {
    /// Summarizes `net` at `batch`.
    pub fn of(net: &Network, batch: u64, dtype: DataType) -> Self {
        let layers: Vec<LayerSummary> = net
            .layers()
            .iter()
            .map(|l| LayerSummary::of(l, batch, dtype))
            .collect();
        NetworkSummary {
            name: net.name().to_owned(),
            total_forward_macs: net.total_forward_macs(batch),
            total_weight_bytes: net.total_weight_bytes(dtype),
            total_stash_bytes: layers.iter().map(|l| l.stash_bytes).sum(),
            layers,
        }
    }

    /// The §V-A diagnostic: stashed-activation bytes per weight byte.
    /// Well above 1 for CNNs (feature maps dominate), near or below 1 for
    /// recurrent networks at modest batch.
    pub fn activation_to_weight_ratio(&self) -> f64 {
        if self.total_weight_bytes == 0 {
            0.0
        } else {
            self.total_stash_bytes as f64 / self.total_weight_bytes as f64
        }
    }

    /// The layer with the highest arithmetic intensity.
    pub fn most_compute_bound(&self) -> Option<&LayerSummary> {
        self.layers
            .iter()
            .max_by(|a, b| a.macs_per_byte.total_cmp(&b.macs_per_byte))
    }

    /// The `n` layers with the largest stashes — the overlay traffic
    /// hot-spots a practitioner would attack first.
    pub fn largest_stashes(&self, n: usize) -> Vec<&LayerSummary> {
        let mut rows: Vec<&LayerSummary> = self.layers.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.stash_bytes));
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::Benchmark;

    #[test]
    fn totals_reconcile_with_network_analytics() {
        for bm in [Benchmark::AlexNet, Benchmark::RnnLstm2] {
            let net = bm.build();
            let s = NetworkSummary::of(&net, 64, DataType::F32);
            assert_eq!(s.total_forward_macs, net.total_forward_macs(64));
            assert_eq!(s.total_weight_bytes, net.total_weight_bytes(DataType::F32));
            assert_eq!(s.layers.len(), net.layer_count());
        }
    }

    #[test]
    fn section_5a_ratios() {
        // CNN feature maps dominate weights; a narrow LSTM inverts.
        let vgg = NetworkSummary::of(&Benchmark::VggE.build(), 64, DataType::F32);
        assert!(
            vgg.activation_to_weight_ratio() > 1.0,
            "{}",
            vgg.activation_to_weight_ratio()
        );
        let lstm = NetworkSummary::of(&Benchmark::RnnLstm1.build(), 16, DataType::F32);
        // h=512 LSTM at batch 16: one 8.4 MB weight tensor vs small stashes.
        assert!(
            lstm.activation_to_weight_ratio() < 1.0,
            "{}",
            lstm.activation_to_weight_ratio()
        );
    }

    #[test]
    fn hotspots_are_the_early_large_feature_maps() {
        let s = NetworkSummary::of(&Benchmark::VggE.build(), 64, DataType::F32);
        let top = s.largest_stashes(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].stash_bytes >= top[1].stash_bytes);
        // VGG's biggest stash is an early 224x224 feature map (the stage-1
        // conv or the ReLU consuming it).
        assert!(
            top[0].name.starts_with("conv1") || top[0].name.starts_with("relu1"),
            "unexpected hotspot {}",
            top[0].name
        );
    }

    #[test]
    fn most_compute_bound_is_a_conv() {
        let s = NetworkSummary::of(&Benchmark::ResNet.build(), 64, DataType::F32);
        let hot = s.most_compute_bound().expect("non-empty");
        assert!(
            hot.macs_per_byte > 50.0,
            "{}: {}",
            hot.name,
            hot.macs_per_byte
        );
        assert!(hot.kind.contains("Conv2d"), "{}", hot.kind);
    }
}
