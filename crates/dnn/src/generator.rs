//! Synthetic workload generation.
//!
//! Two generators:
//!
//! * [`video_understanding`] — the §V-E motivation workload: a CNN frame
//!   encoder feeding a recurrent head over many video frames (the
//!   "mixture of CNNs, LSTMs and memory networks" whose end-to-end
//!   training "becomes practically impossible because of the memory
//!   capacity bottleneck");
//! * [`random_network`] — seeded random-but-valid CNN/RNN topologies for
//!   property-based testing of the simulator stack (any generated network
//!   must schedule, virtualize, and simulate without panicking).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{LayerKind, PoolKind, RnnCellKind};
use crate::network::{Application, Network, NetworkBuilder};
use crate::tensor::TensorShape;

/// Configuration for [`video_understanding`].
#[derive(Debug, Clone, PartialEq)]
pub struct VideoConfig {
    /// Frame resolution (square).
    pub frame_size: usize,
    /// CNN encoder stages (each: two 3x3 convolutions + 2x2 pool).
    pub encoder_stages: usize,
    /// Base channel width, doubled per stage up to 512.
    pub base_channels: usize,
    /// Recurrent hidden width.
    pub hidden: usize,
    /// Video frames (recurrent timesteps).
    pub frames: usize,
    /// Output vocabulary for the captioning head.
    pub vocabulary: usize,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            frame_size: 224,
            encoder_stages: 5,
            base_channels: 64,
            hidden: 2048,
            frames: 64,
            vocabulary: 20_000,
        }
    }
}

/// Builds a §V-E-style video-understanding network (CNN encoder + LSTM
/// decoder).
///
/// # Examples
///
/// ```
/// use mcdla_dnn::generator::{video_understanding, VideoConfig};
///
/// let net = video_understanding(&VideoConfig::default());
/// assert!(net.weighted_depth() > 70);
/// ```
///
/// # Panics
///
/// Panics if the configuration produces an invalid geometry (e.g. more
/// pooling stages than the frame size supports).
pub fn video_understanding(cfg: &VideoConfig) -> Network {
    let mut b = NetworkBuilder::new("video-understanding", Application::LanguageModeling);
    let mut x = b.input(TensorShape::chw(3, cfg.frame_size, cfg.frame_size));
    for stage in 0..cfg.encoder_stages {
        let ch = (cfg.base_channels << stage).min(512);
        for i in 0..2 {
            x = b
                .conv(&format!("enc{stage}_{i}"), x, ch, 3, 1, 1)
                .expect("encoder conv");
            x = b.relu(&format!("enc{stage}_{i}/relu"), x).expect("relu");
        }
        x = b
            .pool(&format!("enc{stage}/pool"), x, PoolKind::Max, 2, 2, 0)
            .expect("pool");
    }
    let feat = b.fully_connected("embed", x, cfg.hidden).expect("embed");
    let mut h = b
        .unary("embed/drop", feat, LayerKind::Dropout)
        .expect("dropout");
    let mut first = None;
    for t in 0..cfg.frames {
        h = b
            .rnn_cell(
                &format!("lstm_t{t}"),
                h,
                RnnCellKind::Lstm,
                cfg.hidden,
                cfg.hidden,
            )
            .expect("lstm");
        match first {
            None => first = Some(h),
            Some(c0) => b.share_weights(h, c0).expect("share"),
        }
    }
    let logits = b
        .fully_connected("decoder", h, cfg.vocabulary)
        .expect("decoder");
    let _ = b
        .unary("prob", logits, LayerKind::Softmax)
        .expect("softmax");
    b.build()
}

/// Generates a random valid network from a seed (deterministic per seed).
///
/// Roughly half the seeds produce CNN-style stacks (convolutions,
/// pooling, occasional residual pairs) and half produce unrolled RNNs.
///
/// # Examples
///
/// ```
/// use mcdla_dnn::generator::random_network;
///
/// let a = random_network(7);
/// let b = random_network(7);
/// assert_eq!(a, b, "same seed, same network");
/// assert!(a.layer_count() > 1);
/// ```
pub fn random_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    if rng.gen_bool(0.5) {
        random_cnn(&mut rng)
    } else {
        random_rnn(&mut rng)
    }
}

fn random_cnn(rng: &mut StdRng) -> Network {
    let mut b = NetworkBuilder::new("random-cnn", Application::ImageRecognition);
    let size = *[32usize, 64, 128, 224]
        .get(rng.gen_range(0..4usize))
        .unwrap();
    let mut x = b.input(TensorShape::chw(3, size, size));
    let stages = rng.gen_range(1..=4usize);
    let mut ch = 8usize << rng.gen_range(0..3);
    let mut spatial = size;
    // Channels `x` actually has: a stage may skip all its convolutions
    // (kernel larger than the remaining spatial size), leaving `x` at the
    // previous width, so the residual pair below must not assume `ch`.
    let mut x_ch = 3usize;
    for stage in 0..stages {
        let convs = rng.gen_range(1..=3usize);
        for i in 0..convs {
            let kernel = [1usize, 3, 5][rng.gen_range(0..3usize)];
            if spatial < kernel {
                break;
            }
            x = b
                .conv(&format!("c{stage}_{i}"), x, ch, kernel, 1, kernel / 2)
                .expect("conv geometry is valid by construction");
            x_ch = ch;
            if rng.gen_bool(0.7) {
                x = b.relu(&format!("r{stage}_{i}"), x).expect("relu");
            }
            if rng.gen_bool(0.3) {
                x = b
                    .unary(&format!("bn{stage}_{i}"), x, LayerKind::BatchNorm)
                    .expect("bn");
            }
        }
        // Residual pair on equal shapes.
        if rng.gen_bool(0.3) && spatial >= 3 {
            let y = b
                .conv(&format!("res{stage}"), x, x_ch, 3, 1, 1)
                .expect("res conv");
            x = b.add(&format!("add{stage}"), x, y).expect("same shape");
        }
        if spatial >= 4 {
            x = b
                .pool(&format!("p{stage}"), x, PoolKind::Max, 2, 2, 0)
                .expect("pool");
            spatial /= 2;
        }
        ch = (ch * 2).min(512);
    }
    let f = b
        .fully_connected("fc", x, rng.gen_range(10..=1000))
        .expect("fc");
    let _ = b.unary("prob", f, LayerKind::Softmax).expect("softmax");
    b.build()
}

fn random_rnn(rng: &mut StdRng) -> Network {
    let kind =
        [RnnCellKind::Vanilla, RnnCellKind::Lstm, RnnCellKind::Gru][rng.gen_range(0..3usize)];
    let hidden = 64usize << rng.gen_range(0..6); // 64..2048
    let steps = rng.gen_range(2..=64usize);
    crate::zoo::rnn(
        Application::SpeechRecognition,
        "random-rnn",
        kind,
        hidden,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::DataType;

    #[test]
    fn video_network_matches_section_5e_shape() {
        let net = video_understanding(&VideoConfig::default());
        // 10 encoder convs + embed + 64 shared LSTM steps + decoder.
        assert_eq!(net.weighted_depth(), 10 + 1 + 64 + 1);
        // Weight sharing: decoder-sized params, not 64x the LSTM.
        assert!(net.total_params() < 300_000_000);
        let fp = net.footprint(256, DataType::F32);
        assert!(fp.total_unvirtualized() > 16 * (1u64 << 30));
    }

    #[test]
    fn custom_video_configs_build() {
        let small = VideoConfig {
            frame_size: 64,
            encoder_stages: 3,
            base_channels: 32,
            hidden: 512,
            frames: 8,
            vocabulary: 1000,
        };
        let net = video_understanding(&small);
        assert_eq!(net.weighted_depth(), 6 + 1 + 8 + 1);
    }

    #[test]
    fn random_networks_are_deterministic_and_valid() {
        for seed in 0..50 {
            let net = random_network(seed);
            assert_eq!(net, random_network(seed), "seed {seed}");
            assert!(net.layer_count() >= 2, "seed {seed}");
            // Shapes propagate: analytics never panic.
            let _ = net.footprint(16, DataType::F32);
            let _ = net.last_consumer();
            assert!(net.total_forward_macs(16) > 0, "seed {seed}");
        }
    }

    #[test]
    fn seeds_cover_both_families() {
        let mut cnn = 0;
        let mut rnn = 0;
        for seed in 0..40 {
            match random_network(seed).name() {
                "random-cnn" => cnn += 1,
                "random-rnn" => rnn += 1,
                other => panic!("unexpected family {other}"),
            }
        }
        assert!(cnn > 5 && rnn > 5, "cnn {cnn}, rnn {rnn}");
    }
}
