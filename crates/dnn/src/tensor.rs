//! Tensor shapes and element types.
//!
//! The simulator never materializes tensor *data* — only shapes matter
//! (§IV: the benchmarks are used as microbenchmarks to stress the system
//! interconnect). Shapes here exclude the batch dimension; the batch is a
//! property of the training run and is applied by the analysis layer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Numeric precision of tensor elements.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataType {
    /// IEEE 754 single precision (4 bytes) — the paper-era training default.
    #[default]
    F32,
    /// IEEE 754 half precision (2 bytes).
    F16,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DataType::F32 => 4,
            DataType::F16 => 2,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::F32 => f.write_str("f32"),
            DataType::F16 => f.write_str("f16"),
        }
    }
}

/// The shape of one sample's tensor (batch dimension excluded).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorShape {
    /// A channel-height-width feature map (CNN activations).
    Chw {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A flat feature vector (FC activations, RNN hidden state).
    Vector {
        /// Number of features.
        len: usize,
    },
}

impl TensorShape {
    /// A `C × H × W` feature map.
    pub const fn chw(c: usize, h: usize, w: usize) -> Self {
        TensorShape::Chw { c, h, w }
    }

    /// A flat vector of `len` features.
    pub const fn vector(len: usize) -> Self {
        TensorShape::Vector { len }
    }

    /// Elements per sample.
    pub fn elements(&self) -> u64 {
        match *self {
            TensorShape::Chw { c, h, w } => (c as u64) * (h as u64) * (w as u64),
            TensorShape::Vector { len } => len as u64,
        }
    }

    /// Bytes per sample at the given precision.
    pub fn bytes(&self, dtype: DataType) -> u64 {
        self.elements() * dtype.size_bytes()
    }

    /// Channel count: `c` for feature maps, `len` for vectors.
    pub fn channels(&self) -> usize {
        match *self {
            TensorShape::Chw { c, .. } => c,
            TensorShape::Vector { len } => len,
        }
    }

    /// Spatial size `(h, w)`; vectors are `1 × 1`.
    pub fn spatial(&self) -> (usize, usize) {
        match *self {
            TensorShape::Chw { h, w, .. } => (h, w),
            TensorShape::Vector { .. } => (1, 1),
        }
    }

    /// Flattens a feature map into a vector shape (e.g. before an FC layer).
    pub fn flattened(&self) -> TensorShape {
        TensorShape::vector(self.elements() as usize)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorShape::Chw { c, h, w } => write!(f, "{c}x{h}x{w}"),
            TensorShape::Vector { len } => write!(f, "{len}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::chw(3, 227, 227);
        assert_eq!(s.elements(), 3 * 227 * 227);
        assert_eq!(s.bytes(DataType::F32), 3 * 227 * 227 * 4);
        assert_eq!(s.bytes(DataType::F16), 3 * 227 * 227 * 2);
    }

    #[test]
    fn vector_shape() {
        let v = TensorShape::vector(4096);
        assert_eq!(v.elements(), 4096);
        assert_eq!(v.channels(), 4096);
        assert_eq!(v.spatial(), (1, 1));
    }

    #[test]
    fn flatten_preserves_elements() {
        let s = TensorShape::chw(256, 6, 6);
        assert_eq!(s.flattened(), TensorShape::vector(9216));
        assert_eq!(s.flattened().elements(), s.elements());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TensorShape::chw(64, 56, 56).to_string(), "64x56x56");
        assert_eq!(TensorShape::vector(1000).to_string(), "1000");
        assert_eq!(DataType::F32.to_string(), "f32");
    }
}
