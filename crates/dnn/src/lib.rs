//! # `mcdla-dnn` — DNN workload substrate
//!
//! The workload half of the MC-DLA simulator (Kwon & Rhu, *Beyond the Memory
//! Wall*, MICRO-51 2018): layer and network models that expose exactly the
//! quantities the system simulator consumes —
//!
//! * per-layer forward/backward **MAC counts** (compute cost),
//! * per-layer **feature-map / weight / gradient byte sizes** (memory and
//!   communication cost),
//! * the network **DAG** from which the memory-virtualization runtime derives
//!   data dependencies and offload points (§II-B),
//! * the eight **Table III benchmarks** ([`Benchmark`]).
//!
//! No tensor data is ever materialized; training here is a cost model, not a
//! numerical computation (§IV uses the workloads as interconnect stress
//! microbenchmarks).
//!
//! # Examples
//!
//! ```
//! use mcdla_dnn::{Benchmark, DataType};
//!
//! let vgg = Benchmark::VggE.build();
//! assert_eq!(vgg.weighted_depth(), 19);
//! assert_eq!(vgg.total_params(), 143_667_240);
//!
//! // Training VGG-E at the paper's batch size of 512 without
//! // virtualization needs far more memory than the 16 GB of a Volta-class
//! // device...
//! let fp = vgg.footprint(512, DataType::F32);
//! assert!(fp.total_unvirtualized() > 16 * (1u64 << 30));
//! // ...but the virtualized working set is several times smaller.
//! assert!(fp.total_virtualized() < fp.total_unvirtualized() / 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
mod layer;
mod network;
mod summary;
mod tensor;
pub mod zoo;

pub use layer::{ActivationKind, Layer, LayerId, LayerKind, PoolKind, RnnCellKind};
pub use network::{Application, BuildError, MemoryFootprint, Network, NetworkBuilder};
pub use summary::{LayerSummary, NetworkSummary};
pub use tensor::{DataType, TensorShape};
pub use zoo::Benchmark;
