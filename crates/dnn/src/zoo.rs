//! The benchmark suite of Table III.
//!
//! Four ImageNet CNNs (AlexNet, GoogLeNet, VGG-E, ResNet) and four
//! DeepBench-derived RNN workloads (vanilla GEMV RNN, two LSTMs, one GRU).
//! Topologies follow the published network definitions; parameter counts are
//! verified against the literature in this module's tests (AlexNet
//! 60,965,224; VGG-19 143,667,240; GoogLeNet 6,998,552; ResNet-34 ≈21.8M).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::layer::{LayerKind, PoolKind, RnnCellKind};
use crate::network::{Application, Network, NetworkBuilder};
use crate::tensor::TensorShape;

/// The eight evaluated workloads (Table III).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// AlexNet — 8 weighted layers, image recognition.
    AlexNet,
    /// GoogLeNet (Inception v1) — 58 weighted layers, image recognition.
    GoogLeNet,
    /// VGG-E (VGG-19) — 19 weighted layers, image recognition.
    VggE,
    /// ResNet-34 — 34 weighted layers, image recognition.
    ResNet,
    /// DeepBench vanilla RNN, h=1760, 50 timesteps, speech recognition.
    RnnGemv,
    /// DeepBench LSTM, h=512, 25 timesteps, machine translation.
    RnnLstm1,
    /// DeepBench LSTM, h=2048, 25 timesteps, language modeling.
    RnnLstm2,
    /// DeepBench GRU, h=2816, 187 timesteps, speech recognition.
    RnnGru,
}

impl Benchmark {
    /// All eight benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::AlexNet,
        Benchmark::GoogLeNet,
        Benchmark::VggE,
        Benchmark::ResNet,
        Benchmark::RnnGemv,
        Benchmark::RnnLstm1,
        Benchmark::RnnLstm2,
        Benchmark::RnnGru,
    ];

    /// The four CNN benchmarks (used by Fig. 2 and the cDMA sensitivity
    /// study, which apply to CNNs only).
    pub const CNNS: [Benchmark; 4] = [
        Benchmark::AlexNet,
        Benchmark::GoogLeNet,
        Benchmark::VggE,
        Benchmark::ResNet,
    ];

    /// Table III display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AlexNet => "AlexNet",
            Benchmark::GoogLeNet => "GoogLeNet",
            Benchmark::VggE => "VGG-E",
            Benchmark::ResNet => "ResNet",
            Benchmark::RnnGemv => "RNN-GEMV",
            Benchmark::RnnLstm1 => "RNN-LSTM-1",
            Benchmark::RnnLstm2 => "RNN-LSTM-2",
            Benchmark::RnnGru => "RNN-GRU",
        }
    }

    /// True for the CNN half of the suite.
    pub fn is_cnn(self) -> bool {
        matches!(
            self,
            Benchmark::AlexNet | Benchmark::GoogLeNet | Benchmark::VggE | Benchmark::ResNet
        )
    }

    /// Recurrent timestep count (Table III), `None` for CNNs.
    pub fn timesteps(self) -> Option<usize> {
        match self {
            Benchmark::RnnGemv => Some(50),
            Benchmark::RnnLstm1 | Benchmark::RnnLstm2 => Some(25),
            Benchmark::RnnGru => Some(187),
            _ => None,
        }
    }

    /// Builds the network topology.
    pub fn build(self) -> Network {
        match self {
            Benchmark::AlexNet => alexnet(),
            Benchmark::GoogLeNet => googlenet(),
            Benchmark::VggE => vgg_e(),
            Benchmark::ResNet => resnet34(),
            Benchmark::RnnGemv => rnn(
                Application::SpeechRecognition,
                "RNN-GEMV",
                RnnCellKind::Vanilla,
                1760,
                50,
            ),
            Benchmark::RnnLstm1 => rnn(
                Application::MachineTranslation,
                "RNN-LSTM-1",
                RnnCellKind::Lstm,
                512,
                25,
            ),
            Benchmark::RnnLstm2 => rnn(
                Application::LanguageModeling,
                "RNN-LSTM-2",
                RnnCellKind::Lstm,
                2048,
                25,
            ),
            Benchmark::RnnGru => rnn(
                Application::SpeechRecognition,
                "RNN-GRU",
                RnnCellKind::Gru,
                2816,
                187,
            ),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// AlexNet with the original grouped (two-tower) convolutions.
pub fn alexnet() -> Network {
    let mut b = NetworkBuilder::new("AlexNet", Application::ImageRecognition);
    let x = b.input(TensorShape::chw(3, 227, 227));
    let c1 = b.conv("conv1", x, 96, 11, 4, 0).expect("conv1");
    let r1 = b.relu("relu1", c1).expect("relu1");
    let n1 = b.unary("norm1", r1, LayerKind::Lrn).expect("norm1");
    let p1 = b.pool("pool1", n1, PoolKind::Max, 3, 2, 0).expect("pool1");
    let c2 = b.conv_grouped("conv2", p1, 256, 5, 1, 2, 2).expect("conv2");
    let r2 = b.relu("relu2", c2).expect("relu2");
    let n2 = b.unary("norm2", r2, LayerKind::Lrn).expect("norm2");
    let p2 = b.pool("pool2", n2, PoolKind::Max, 3, 2, 0).expect("pool2");
    let c3 = b.conv("conv3", p2, 384, 3, 1, 1).expect("conv3");
    let r3 = b.relu("relu3", c3).expect("relu3");
    let c4 = b.conv_grouped("conv4", r3, 384, 3, 1, 1, 2).expect("conv4");
    let r4 = b.relu("relu4", c4).expect("relu4");
    let c5 = b.conv_grouped("conv5", r4, 256, 3, 1, 1, 2).expect("conv5");
    let r5 = b.relu("relu5", c5).expect("relu5");
    let p5 = b.pool("pool5", r5, PoolKind::Max, 3, 2, 0).expect("pool5");
    let f6 = b.fully_connected("fc6", p5, 4096).expect("fc6");
    let r6 = b.relu("relu6", f6).expect("relu6");
    let d6 = b.unary("drop6", r6, LayerKind::Dropout).expect("drop6");
    let f7 = b.fully_connected("fc7", d6, 4096).expect("fc7");
    let r7 = b.relu("relu7", f7).expect("relu7");
    let d7 = b.unary("drop7", r7, LayerKind::Dropout).expect("drop7");
    let f8 = b.fully_connected("fc8", d7, 1000).expect("fc8");
    let _ = b.unary("prob", f8, LayerKind::Softmax).expect("prob");
    b.build()
}

/// VGG-E (VGG-19): sixteen 3x3 convolutions in five blocks plus three FCs.
pub fn vgg_e() -> Network {
    let mut b = NetworkBuilder::new("VGG-E", Application::ImageRecognition);
    let mut prev = b.input(TensorShape::chw(3, 224, 224));
    let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];
    for (bi, (ch, n)) in blocks.iter().enumerate() {
        for li in 0..*n {
            let name = format!("conv{}_{}", bi + 1, li + 1);
            prev = b.conv(&name, prev, *ch, 3, 1, 1).expect("conv");
            prev = b
                .relu(&format!("relu{}_{}", bi + 1, li + 1), prev)
                .expect("relu");
        }
        prev = b
            .pool(&format!("pool{}", bi + 1), prev, PoolKind::Max, 2, 2, 0)
            .expect("pool");
    }
    let f6 = b.fully_connected("fc6", prev, 4096).expect("fc6");
    let r6 = b.relu("relu6", f6).expect("relu6");
    let d6 = b.unary("drop6", r6, LayerKind::Dropout).expect("drop6");
    let f7 = b.fully_connected("fc7", d6, 4096).expect("fc7");
    let r7 = b.relu("relu7", f7).expect("relu7");
    let d7 = b.unary("drop7", r7, LayerKind::Dropout).expect("drop7");
    let f8 = b.fully_connected("fc8", d7, 1000).expect("fc8");
    let _ = b.unary("prob", f8, LayerKind::Softmax).expect("prob");
    b.build()
}

/// One inception module: four parallel branches concatenated channel-wise.
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut NetworkBuilder,
    name: &str,
    input: crate::LayerId,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pp: usize,
) -> crate::LayerId {
    let b1 = b
        .conv(&format!("{name}/1x1"), input, c1, 1, 1, 0)
        .expect("1x1");
    let b1 = b.relu(&format!("{name}/relu_1x1"), b1).expect("relu");
    let b3r = b
        .conv(&format!("{name}/3x3_reduce"), input, c3r, 1, 1, 0)
        .expect("3x3r");
    let b3r = b.relu(&format!("{name}/relu_3x3r"), b3r).expect("relu");
    let b3 = b
        .conv(&format!("{name}/3x3"), b3r, c3, 3, 1, 1)
        .expect("3x3");
    let b3 = b.relu(&format!("{name}/relu_3x3"), b3).expect("relu");
    let b5r = b
        .conv(&format!("{name}/5x5_reduce"), input, c5r, 1, 1, 0)
        .expect("5x5r");
    let b5r = b.relu(&format!("{name}/relu_5x5r"), b5r).expect("relu");
    let b5 = b
        .conv(&format!("{name}/5x5"), b5r, c5, 5, 1, 2)
        .expect("5x5");
    let b5 = b.relu(&format!("{name}/relu_5x5"), b5).expect("relu");
    let bp = b
        .pool(&format!("{name}/pool"), input, PoolKind::Max, 3, 1, 1)
        .expect("pool");
    let bp = b
        .conv(&format!("{name}/pool_proj"), bp, pp, 1, 1, 0)
        .expect("pool_proj");
    let bp = b.relu(&format!("{name}/relu_pp"), bp).expect("relu");
    b.concat(&format!("{name}/output"), &[b1, b3, b5, bp])
        .expect("concat")
}

/// GoogLeNet (Inception v1) without auxiliary classifiers: 58 weighted
/// layers (3 stem convs + 9 modules x 6 convs + 1 FC).
pub fn googlenet() -> Network {
    let mut b = NetworkBuilder::new("GoogLeNet", Application::ImageRecognition);
    let x = b.input(TensorShape::chw(3, 224, 224));
    let c1 = b.conv("conv1/7x7_s2", x, 64, 7, 2, 3).expect("conv1");
    let r1 = b.relu("conv1/relu", c1).expect("relu");
    let p1 = b
        .pool("pool1/3x3_s2", r1, PoolKind::Max, 3, 2, 0)
        .expect("pool1");
    let n1 = b.unary("pool1/norm1", p1, LayerKind::Lrn).expect("norm1");
    let c2r = b.conv("conv2/3x3_reduce", n1, 64, 1, 1, 0).expect("conv2r");
    let r2r = b.relu("conv2/relu_r", c2r).expect("relu");
    let c2 = b.conv("conv2/3x3", r2r, 192, 3, 1, 1).expect("conv2");
    let r2 = b.relu("conv2/relu", c2).expect("relu");
    let n2 = b.unary("conv2/norm2", r2, LayerKind::Lrn).expect("norm2");
    let p2 = b
        .pool("pool2/3x3_s2", n2, PoolKind::Max, 3, 2, 0)
        .expect("pool2");

    let i3a = inception(&mut b, "inception_3a", p2, 64, 96, 128, 16, 32, 32);
    let i3b = inception(&mut b, "inception_3b", i3a, 128, 128, 192, 32, 96, 64);
    let p3 = b
        .pool("pool3/3x3_s2", i3b, PoolKind::Max, 3, 2, 0)
        .expect("pool3");
    let i4a = inception(&mut b, "inception_4a", p3, 192, 96, 208, 16, 48, 64);
    let i4b = inception(&mut b, "inception_4b", i4a, 160, 112, 224, 24, 64, 64);
    let i4c = inception(&mut b, "inception_4c", i4b, 128, 128, 256, 24, 64, 64);
    let i4d = inception(&mut b, "inception_4d", i4c, 112, 144, 288, 32, 64, 64);
    let i4e = inception(&mut b, "inception_4e", i4d, 256, 160, 320, 32, 128, 128);
    let p4 = b
        .pool("pool4/3x3_s2", i4e, PoolKind::Max, 3, 2, 0)
        .expect("pool4");
    let i5a = inception(&mut b, "inception_5a", p4, 256, 160, 320, 32, 128, 128);
    let i5b = inception(&mut b, "inception_5b", i5a, 384, 192, 384, 48, 128, 128);

    let gp = b.global_avg_pool("pool5/7x7_s1", i5b).expect("gap");
    let dp = b.unary("pool5/drop", gp, LayerKind::Dropout).expect("drop");
    let fc = b.fully_connected("loss3/classifier", dp, 1000).expect("fc");
    let _ = b.unary("prob", fc, LayerKind::Softmax).expect("prob");
    b.build()
}

/// One ResNet basic block (two 3x3 convolutions plus identity or projection
/// shortcut).
fn basic_block(
    b: &mut NetworkBuilder,
    name: &str,
    input: crate::LayerId,
    channels: usize,
    stride: usize,
    project: bool,
) -> crate::LayerId {
    let c1 = b
        .conv(&format!("{name}/conv1"), input, channels, 3, stride, 1)
        .expect("conv1");
    let n1 = b
        .unary(&format!("{name}/bn1"), c1, LayerKind::BatchNorm)
        .expect("bn1");
    let r1 = b.relu(&format!("{name}/relu1"), n1).expect("relu1");
    let c2 = b
        .conv(&format!("{name}/conv2"), r1, channels, 3, 1, 1)
        .expect("conv2");
    let n2 = b
        .unary(&format!("{name}/bn2"), c2, LayerKind::BatchNorm)
        .expect("bn2");
    let shortcut = if project {
        let p = b
            .conv_shortcut(&format!("{name}/proj"), input, channels, 1, stride, 0)
            .expect("proj");
        b.unary(&format!("{name}/proj_bn"), p, LayerKind::BatchNorm)
            .expect("proj_bn")
    } else {
        input
    };
    let s = b.add(&format!("{name}/add"), n2, shortcut).expect("add");
    b.relu(&format!("{name}/relu2"), s).expect("relu2")
}

/// ResNet-34: 33 depth-counting convolutions plus one FC.
pub fn resnet34() -> Network {
    let mut b = NetworkBuilder::new("ResNet", Application::ImageRecognition);
    let x = b.input(TensorShape::chw(3, 224, 224));
    let c1 = b.conv("conv1", x, 64, 7, 2, 3).expect("conv1");
    let n1 = b.unary("bn1", c1, LayerKind::BatchNorm).expect("bn1");
    let r1 = b.relu("relu1", n1).expect("relu1");
    let mut prev = b
        .pool_floor("pool1", r1, PoolKind::Max, 3, 2, 1)
        .expect("pool1");
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (si, (ch, blocks)) in stages.iter().enumerate() {
        for bi in 0..*blocks {
            let first_of_downsampling_stage = bi == 0 && si > 0;
            let stride = if first_of_downsampling_stage { 2 } else { 1 };
            prev = basic_block(
                &mut b,
                &format!("conv{}_{}", si + 2, bi + 1),
                prev,
                *ch,
                stride,
                first_of_downsampling_stage,
            );
        }
    }
    let gp = b.global_avg_pool("avgpool", prev).expect("gap");
    let fc = b.fully_connected("fc", gp, 1000).expect("fc");
    let _ = b.unary("prob", fc, LayerKind::Softmax).expect("prob");
    b.build()
}

/// A DeepBench-style unrolled recurrent network: `timesteps` cells of the
/// given flavor with `input = hidden` widths, as in the DeepBench RNN
/// kernels. All timesteps share one physical weight tensor.
pub fn rnn(
    application: Application,
    name: &str,
    kind: RnnCellKind,
    hidden: usize,
    timesteps: usize,
) -> Network {
    let mut b = NetworkBuilder::new(name, application);
    let mut prev = b.input(TensorShape::vector(hidden));
    let mut first_cell = None;
    for t in 0..timesteps {
        prev = b
            .rnn_cell(&format!("t{t}"), prev, kind, hidden, hidden)
            .expect("rnn cell");
        match first_cell {
            None => first_cell = Some(prev),
            Some(cell0) => b.share_weights(prev, cell0).expect("share weights"),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::DataType;

    #[test]
    fn table3_depths() {
        assert_eq!(alexnet().weighted_depth(), 8);
        assert_eq!(googlenet().weighted_depth(), 58);
        assert_eq!(vgg_e().weighted_depth(), 19);
        assert_eq!(resnet34().weighted_depth(), 34);
        assert_eq!(Benchmark::RnnGemv.build().weighted_depth(), 50);
        assert_eq!(Benchmark::RnnLstm1.build().weighted_depth(), 25);
        assert_eq!(Benchmark::RnnLstm2.build().weighted_depth(), 25);
        assert_eq!(Benchmark::RnnGru.build().weighted_depth(), 187);
    }

    #[test]
    fn alexnet_params_match_literature() {
        assert_eq!(alexnet().total_params(), 60_965_224);
    }

    #[test]
    fn vgg19_params_match_literature() {
        assert_eq!(vgg_e().total_params(), 143_667_240);
    }

    #[test]
    fn googlenet_params_match_literature() {
        assert_eq!(googlenet().total_params(), 6_998_552);
    }

    #[test]
    fn resnet34_params_match_literature() {
        // torchvision reports 21,797,672 including batch-norm affine
        // parameters; convolutions+biases alone come to 21,789,160.
        let p = resnet34().total_params();
        assert_eq!(p, 21_789_160);
        assert!((p as f64 - 21_797_672.0).abs() / 21_797_672.0 < 0.005);
    }

    #[test]
    fn alexnet_shapes_match_literature() {
        let n = alexnet();
        let conv1 = &n.layers()[1];
        assert_eq!(conv1.output_shape(), &TensorShape::chw(96, 55, 55));
        let fc6 = n
            .layers()
            .iter()
            .find(|l| l.name() == "fc6")
            .expect("fc6 exists");
        assert_eq!(fc6.input_shape().elements(), 9216);
    }

    #[test]
    fn googlenet_inception_output_channels() {
        let n = googlenet();
        let by_name = |s: &str| {
            n.layers()
                .iter()
                .find(|l| l.name() == s)
                .unwrap_or_else(|| panic!("layer {s}"))
        };
        assert_eq!(
            by_name("inception_3a/output").output_shape().channels(),
            256
        );
        assert_eq!(
            by_name("inception_3b/output").output_shape().channels(),
            480
        );
        assert_eq!(
            by_name("inception_4e/output").output_shape().channels(),
            832
        );
        assert_eq!(
            by_name("inception_5b/output").output_shape().channels(),
            1024
        );
        // Spatial sizes: 28 at stage 3, 14 at stage 4, 7 at stage 5.
        assert_eq!(
            by_name("inception_3a/output").output_shape().spatial(),
            (28, 28)
        );
        assert_eq!(
            by_name("inception_4a/output").output_shape().spatial(),
            (14, 14)
        );
        assert_eq!(
            by_name("inception_5a/output").output_shape().spatial(),
            (7, 7)
        );
    }

    #[test]
    fn resnet_stage_shapes() {
        let n = resnet34();
        let fc = n.layers().iter().find(|l| l.name() == "fc").expect("fc");
        assert_eq!(fc.input_shape().elements(), 512);
        // Stem pooling: 224 -> 112 -> 56.
        let pool1 = n
            .layers()
            .iter()
            .find(|l| l.name() == "pool1")
            .expect("pool1");
        assert_eq!(pool1.output_shape(), &TensorShape::chw(64, 56, 56));
    }

    #[test]
    fn cnn_feature_maps_dominate_weights_and_rnns_invert() {
        // §V-A: conv layers' feature maps dominate their weights; recurrent
        // layers' weights take a larger fraction than their feature maps.
        let batch = 64;
        let vgg = vgg_e().footprint(batch, DataType::F32);
        assert!(
            vgg.stashed_activation_bytes > vgg.weight_bytes,
            "VGG activations should dominate at batch {batch}"
        );
        // Per-layer view for the recurrent case: one LSTM cell's weight
        // tensor is far larger than its per-timestep activation stash.
        let lstm = Benchmark::RnnLstm2.build();
        let cell = &lstm.layers()[1];
        assert!(
            cell.weight_bytes(DataType::F32) > cell.stash_bytes(batch, DataType::F32),
            "LSTM cell weights should dominate: {} vs {}",
            cell.weight_bytes(DataType::F32),
            cell.stash_bytes(batch, DataType::F32)
        );
    }

    #[test]
    fn rnn_timesteps_share_one_weight_tensor() {
        let net = Benchmark::RnnLstm1.build(); // h = 512, t = 25
                                               // Parameters count one cell, not 25.
        let one_cell = 4 * ((512 + 512) * 512 + 512) as u64;
        assert_eq!(net.total_params(), one_cell);
        assert_eq!(net.unique_weight_layers().count(), 1);
        // All cells are in timestep 0's sharing group.
        let g0 = net.layers()[1].weight_group();
        assert!(net.layers().iter().skip(1).all(|l| l.weight_group() == g0));
    }

    #[test]
    fn benchmark_enum_round_trips() {
        for bm in Benchmark::ALL {
            let n = bm.build();
            assert_eq!(n.name(), bm.name());
            if bm.is_cnn() {
                assert_eq!(bm.timesteps(), None);
            } else {
                assert_eq!(bm.timesteps(), Some(n.weighted_depth()));
            }
        }
        assert_eq!(Benchmark::CNNS.len(), 4);
        assert!(Benchmark::CNNS.iter().all(|b| b.is_cnn()));
    }

    #[test]
    fn memory_scales_linearly_with_depth() {
        // §II-B: O(N) memory cost in network depth.
        let short = rnn(
            Application::SpeechRecognition,
            "short",
            RnnCellKind::Lstm,
            1024,
            10,
        );
        let long = rnn(
            Application::SpeechRecognition,
            "long",
            RnnCellKind::Lstm,
            1024,
            40,
        );
        let fs = short.footprint(64, DataType::F32);
        let fl = long.footprint(64, DataType::F32);
        assert_eq!(fl.stashed_activation_bytes, 4 * fs.stashed_activation_bytes);
        // Virtualized footprint is O(1) in depth.
        assert_eq!(fl.peak_live_bytes, fs.peak_live_bytes);
    }
}
