//! Ring networks extracted from a device-side interconnect.
//!
//! Topology-aware collective libraries (NCCL, PowerAI DDL) "cast the
//! underlying system interconnect as multiple ring networks" (§II-C). A
//! [`Ring`] is one such cast: a cyclic traversal of nodes. Rings may visit a
//! node more than once — Fig. 7(a)'s 24-hop ring visits every memory-node
//! twice — so rings record a *sequence* whose length is the hop count.

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, NodeKind, Topology};

/// One ring network: a cyclic node traversal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    sequence: Vec<NodeId>,
}

impl Ring {
    /// Creates a ring from the cyclic node sequence (the final hop back to
    /// the first node is implicit).
    ///
    /// # Panics
    ///
    /// Panics for sequences shorter than 2 nodes.
    pub fn new(sequence: Vec<NodeId>) -> Self {
        assert!(sequence.len() >= 2, "a ring needs at least two nodes");
        Ring { sequence }
    }

    /// The cyclic traversal order.
    pub fn sequence(&self) -> &[NodeId] {
        &self.sequence
    }

    /// Hop count: number of links traversed per lap (= sequence length).
    pub fn hop_count(&self) -> usize {
        self.sequence.len()
    }

    /// Number of *distinct* participant devices in the ring, given the
    /// topology (memory-nodes forward traffic but do not inject collective
    /// messages — footnote 2 of the paper).
    pub fn participant_count(&self, topo: &Topology) -> usize {
        let mut devs: Vec<NodeId> = self
            .sequence
            .iter()
            .copied()
            .filter(|n| topo.node(*n).kind() == NodeKind::Device)
            .collect();
        devs.sort_unstable();
        devs.dedup();
        devs.len()
    }

    /// The consecutive `(src, dst)` pairs of one lap, including the closing
    /// hop.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let n = self.sequence.len();
        (0..n).map(move |i| (self.sequence[i], self.sequence[(i + 1) % n]))
    }

    /// Geometric summary used by the collective latency model.
    pub fn shape(&self, topo: &Topology) -> RingShape {
        RingShape {
            participants: self.participant_count(topo),
            hops: self.hop_count(),
        }
    }
}

/// The two numbers the collective model needs about a ring: how many devices
/// communicate and how many links a lap crosses.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RingShape {
    /// Distinct communicating device-nodes.
    pub participants: usize,
    /// Links traversed per lap.
    pub hops: usize,
}

impl RingShape {
    /// A device-only ring: hop count equals participant count.
    pub fn device_ring(participants: usize) -> Self {
        RingShape {
            participants,
            hops: participants,
        }
    }

    /// Links separating two adjacent participants (1 for a device-only
    /// ring; 2 for MC-DLA's alternating device/memory ring).
    pub fn hops_per_step(&self) -> f64 {
        if self.participants == 0 {
            0.0
        } else {
            self.hops as f64 / self.participants as f64
        }
    }
}

/// Validates that `rings` respect every node's link budget in `topo`.
///
/// Every ring visit consumes **two** of a node's high-bandwidth links (one
/// toward each ring neighbor) — this is why Table II's N = 6 links support
/// exactly three rings per node. Returns the per-node link usage, or an
/// error naming the first node using more than `max_links`.
///
/// # Errors
///
/// Returns `(node, used)` for the first node using more than `max_links`.
pub fn check_link_budget(
    topo: &Topology,
    rings: &[Ring],
    max_links: usize,
) -> Result<Vec<usize>, (NodeId, usize)> {
    let mut used = vec![0usize; topo.nodes().len()];
    for ring in rings {
        for node in ring.sequence() {
            used[node.index()] += 2;
        }
    }
    for (i, &u) in used.iter().enumerate() {
        if u > max_links {
            return Err((NodeId(i), u));
        }
    }
    Ok(used)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_with(devices: usize, memories: usize) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        let mut t = Topology::new();
        let d: Vec<NodeId> = (0..devices)
            .map(|i| t.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        let m: Vec<NodeId> = (0..memories)
            .map(|i| t.add_node(NodeKind::Memory, format!("M{i}")))
            .collect();
        (t, d, m)
    }

    #[test]
    fn device_ring_shape() {
        let (t, d, _) = topo_with(8, 0);
        let r = Ring::new(d.clone());
        assert_eq!(r.hop_count(), 8);
        assert_eq!(r.participant_count(&t), 8);
        let s = r.shape(&t);
        assert_eq!(s, RingShape::device_ring(8));
        assert_eq!(s.hops_per_step(), 1.0);
    }

    #[test]
    fn alternating_ring_has_two_hops_per_step() {
        let (t, d, m) = topo_with(8, 8);
        let mut seq = Vec::new();
        for i in 0..8 {
            seq.push(d[i]);
            seq.push(m[i]);
        }
        let r = Ring::new(seq);
        assert_eq!(r.hop_count(), 16);
        assert_eq!(r.participant_count(&t), 8);
        assert_eq!(r.shape(&t).hops_per_step(), 2.0);
    }

    #[test]
    fn repeated_visits_count_as_hops_not_participants() {
        // Fig. 7(a)'s long ring visits each memory node twice:
        // ... M0 -> D0 -> M0 -> M7 -> D7 -> M7 ...
        let (t, d, m) = topo_with(2, 2);
        let seq = vec![m[0], d[0], m[0], m[1], d[1], m[1]];
        let r = Ring::new(seq);
        assert_eq!(r.hop_count(), 6);
        assert_eq!(r.participant_count(&t), 2);
        assert_eq!(r.shape(&t).hops_per_step(), 3.0);
    }

    #[test]
    fn hops_close_the_cycle() {
        let (_, d, _) = topo_with(3, 0);
        let r = Ring::new(d.clone());
        let hops: Vec<_> = r.hops().collect();
        assert_eq!(hops, vec![(d[0], d[1]), (d[1], d[2]), (d[2], d[0])]);
    }

    #[test]
    fn link_budget_detects_overuse() {
        let (t, d, _) = topo_with(4, 0);
        let ring = Ring::new(d.clone());
        // Three rings use all 6 links per node (2 per ring): exactly N = 6.
        let rings = vec![ring.clone(), ring.clone(), ring.clone()];
        let used = check_link_budget(&t, &rings, 6).expect("within budget");
        assert_eq!(used, vec![6, 6, 6, 6]);
        // A fourth ring exceeds N = 6.
        let rings4 = vec![ring; 4];
        let err = check_link_budget(&t, &rings4, 6).unwrap_err();
        assert_eq!(err.1, 8);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_ring_panics() {
        let (_, d, _) = topo_with(1, 0);
        let _ = Ring::new(d);
    }
}
