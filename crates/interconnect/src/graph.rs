//! Node/link graphs for device-side interconnects.
//!
//! Nodes are device-nodes (GPUs/TPUs), memory-nodes (the paper's
//! contribution), host CPUs, or PCIe switches; links are **uni-directional**
//! (one direction of a bi-directional high-bandwidth link), matching the
//! paper's convention of quoting B = 25 GB/s of uni-directional bandwidth
//! per link.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a node within a [`Topology`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index into the topology's node table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a uni-directional link within a [`Topology`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Index into the topology's link table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a node is.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An accelerator device-node (GPU/TPU).
    Device,
    /// A capacity-optimized memory-node (Fig. 6).
    Memory,
    /// A host CPU socket.
    HostCpu,
    /// A PCIe switch.
    Switch,
}

/// A node of the interconnect graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    name: String,
}

impl Node {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The node's display name (`D0`, `M3`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A uni-directional link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
    bandwidth_gbs: f64,
}

impl Link {
    /// The link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Transmitting node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Receiving node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Uni-directional bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        self.bandwidth_gbs
    }
}

/// A device-side interconnect graph.
///
/// # Examples
///
/// ```
/// use mcdla_interconnect::{NodeKind, Topology};
///
/// let mut t = Topology::new();
/// let d0 = t.add_node(NodeKind::Device, "D0");
/// let m0 = t.add_node(NodeKind::Memory, "M0");
/// t.add_duplex_link(d0, m0, 25.0);
/// assert_eq!(t.links_from(d0).count(), 1);
/// assert_eq!(t.degree(d0), 2); // one out + one in
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        id
    }

    /// Adds one uni-directional link and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown or the bandwidth is not positive.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, bandwidth_gbs: f64) -> LinkId {
        assert!(src.index() < self.nodes.len(), "unknown src node");
        assert!(dst.index() < self.nodes.len(), "unknown dst node");
        assert!(bandwidth_gbs > 0.0, "link bandwidth must be positive");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            id,
            src,
            dst,
            bandwidth_gbs,
        });
        id
    }

    /// Adds both directions of a bi-directional link, returning
    /// `(src->dst, dst->src)`. `bandwidth_gbs` is per direction.
    ///
    /// # Panics
    ///
    /// Same as [`Topology::add_link`].
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth_gbs: f64,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, bandwidth_gbs),
            self.add_link(b, a, bandwidth_gbs),
        )
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Nodes of a given kind, in id order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(move |n| n.kind == kind)
    }

    /// Outgoing links of `node`.
    pub fn links_from(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(move |l| l.src == node)
    }

    /// Incoming links of `node`.
    pub fn links_to(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(move |l| l.dst == node)
    }

    /// The uni-directional links from `a` to `b` (parallel links allowed —
    /// MC-DLA attaches several ring links between the same neighbor pair).
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.src == a && l.dst == b)
            .map(|l| l.id)
            .collect()
    }

    /// Total port count of `node` (in + out) — each uni-directional link
    /// consumes one port; a duplex link consumes two (one lane pair).
    pub fn degree(&self, node: NodeId) -> usize {
        self.links
            .iter()
            .filter(|l| l.src == node || l.dst == node)
            .count()
    }

    /// Number of bi-directional high-bandwidth links a node terminates,
    /// i.e. `degree / 2` for symmetric wiring. This is the quantity bounded
    /// by Table II's N = 6 per node.
    pub fn duplex_degree(&self, node: NodeId) -> usize {
        self.degree(node) / 2
    }

    /// Aggregate per-kind duplex degree statistics, for validating that a
    /// layout respects each node's link budget.
    pub fn duplex_degree_by_kind(&self) -> BTreeMap<&'static str, Vec<usize>> {
        let mut map: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
        for n in &self.nodes {
            let key = match n.kind {
                NodeKind::Device => "device",
                NodeKind::Memory => "memory",
                NodeKind::HostCpu => "host",
                NodeKind::Switch => "switch",
            };
            map.entry(key).or_default().push(self.duplex_degree(n.id));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut t = Topology::new();
        let d0 = t.add_node(NodeKind::Device, "D0");
        let d1 = t.add_node(NodeKind::Device, "D1");
        let m0 = t.add_node(NodeKind::Memory, "M0");
        t.add_duplex_link(d0, d1, 25.0);
        t.add_duplex_link(d0, m0, 25.0);
        assert_eq!(t.nodes().len(), 3);
        assert_eq!(t.links().len(), 4);
        assert_eq!(t.degree(d0), 4);
        assert_eq!(t.duplex_degree(d0), 2);
        assert_eq!(t.links_between(d0, d1).len(), 1);
        assert_eq!(t.links_between(d1, m0).len(), 0);
        assert_eq!(t.nodes_of_kind(NodeKind::Device).count(), 2);
        assert_eq!(t.node(m0).name(), "M0");
    }

    #[test]
    fn parallel_links_are_allowed() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Device, "a");
        let b = t.add_node(NodeKind::Memory, "b");
        for _ in 0..3 {
            t.add_duplex_link(a, b, 25.0);
        }
        assert_eq!(t.links_between(a, b).len(), 3);
        assert_eq!(t.duplex_degree(a), 3);
    }

    #[test]
    #[should_panic(expected = "unknown dst node")]
    fn bad_endpoint_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Device, "a");
        t.add_link(a, NodeId(7), 25.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Device, "a");
        let b = t.add_node(NodeKind::Device, "b");
        t.add_link(a, b, 0.0);
    }
}
