//! Scale-out device-side interconnects (§VI, Fig. 15).
//!
//! The paper's future-work direction: NVSwitch-class, NVLINK-compatible
//! switches let system vendors scale the device-side interconnect beyond
//! one backplane — "tightly integrating thousands of GPUs across hundreds
//! of system nodes". This module builds such a switched plane: every
//! device-node and memory-node hangs off a crossbar with N links each, and
//! the collective library casts the plane into rings that traverse the
//! switch (two hops per adjacent-participant step).

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, NodeKind, Topology};
use crate::ring::RingShape;

/// A switched scale-out plane of device- and memory-nodes (Fig. 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutPlane {
    topology: Topology,
    devices: Vec<NodeId>,
    memory_nodes: Vec<NodeId>,
    switch: NodeId,
    links_per_node: usize,
    link_bandwidth_gbs: f64,
}

impl ScaleOutPlane {
    /// Builds a plane of `devices` device-nodes and `memory_nodes`
    /// memory-nodes around one logical switch, each node attaching with
    /// `links_per_node` duplex links of `link_bandwidth_gbs` (Fig. 15 uses
    /// N = 3 per node).
    ///
    /// # Panics
    ///
    /// Panics if `devices` or `links_per_node` is zero, or the bandwidth is
    /// not positive.
    pub fn new(
        devices: usize,
        memory_nodes: usize,
        links_per_node: usize,
        link_bandwidth_gbs: f64,
    ) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(links_per_node > 0, "nodes need links");
        assert!(link_bandwidth_gbs > 0.0, "bandwidth must be positive");
        let mut topology = Topology::new();
        let switch = topology.add_node(NodeKind::Switch, "nvswitch");
        let device_ids: Vec<NodeId> = (0..devices)
            .map(|i| topology.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        let memory_ids: Vec<NodeId> = (0..memory_nodes)
            .map(|i| topology.add_node(NodeKind::Memory, format!("M{i}")))
            .collect();
        for &n in device_ids.iter().chain(&memory_ids) {
            for _ in 0..links_per_node {
                topology.add_duplex_link(n, switch, link_bandwidth_gbs);
            }
        }
        ScaleOutPlane {
            topology,
            devices: device_ids,
            memory_nodes: memory_ids,
            switch,
            links_per_node,
            link_bandwidth_gbs,
        }
    }

    /// The underlying graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Device-nodes on the plane.
    pub fn devices(&self) -> &[NodeId] {
        &self.devices
    }

    /// Memory-nodes on the plane.
    pub fn memory_nodes(&self) -> &[NodeId] {
        &self.memory_nodes
    }

    /// The switch node.
    pub fn switch(&self) -> NodeId {
        self.switch
    }

    /// Ring shapes the collective library casts onto the plane: one ring
    /// per node link, each step crossing two links (node → switch → node).
    pub fn ring_shapes(&self) -> Vec<RingShape> {
        vec![
            RingShape {
                participants: self.devices.len(),
                hops: 2 * self.devices.len(),
            };
            self.links_per_node
        ]
    }

    /// Per-device virtualization bandwidth to the memory-node pool in GB/s:
    /// all links can reach any memory-node through the switch, bounded by
    /// the pool's aggregate link bandwidth divided among devices.
    pub fn virt_bandwidth_gbs(&self) -> f64 {
        if self.memory_nodes.is_empty() {
            return 0.0;
        }
        let device_side = self.links_per_node as f64 * self.link_bandwidth_gbs;
        let pool_side =
            self.memory_nodes.len() as f64 * self.links_per_node as f64 * self.link_bandwidth_gbs
                / self.devices.len() as f64;
        device_side.min(pool_side)
    }

    /// Bisection bandwidth of the plane in GB/s (all traffic crosses the
    /// switch; the bisection is half the devices' aggregate attachment).
    pub fn bisection_bandwidth_gbs(&self) -> f64 {
        self.devices.len() as f64 / 2.0 * self.links_per_node as f64 * self.link_bandwidth_gbs
    }

    /// Links each node attaches to the switch with.
    pub fn links_per_node(&self) -> usize {
        self.links_per_node
    }

    /// Per-direction bandwidth of one attachment link in GB/s.
    pub fn link_bandwidth_gbs(&self) -> f64 {
        self.link_bandwidth_gbs
    }

    /// Per-device, per-ring injection bandwidth (GB/s, one direction) the
    /// plane can sustain when collectives are striped over `rings` rings.
    ///
    /// Every ring step crosses the switch (node → switch → node), so each
    /// injected byte consumes one up-crossing and one down-crossing of the
    /// plane's bisection: aggregate injection across all devices and rings
    /// is bounded by `2 x bisection`, and no single link can carry more
    /// than its own bandwidth. With `rings == links_per_node` (the Fig. 15
    /// configuration) this is exactly the link bandwidth — the switched
    /// plane is non-blocking for its own ring set — but the bound is what
    /// keeps over-striped configurations physically sane.
    pub fn collective_ring_share_gbs(&self, rings: usize) -> f64 {
        if rings == 0 || self.devices.is_empty() {
            return 0.0;
        }
        let fair = 2.0 * self.bisection_bandwidth_gbs() / (self.devices.len() * rings) as f64;
        fair.min(self.link_bandwidth_gbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_plane_shape() {
        // Fig. 15: 8 nodes per system node, N = 3 links each.
        let plane = ScaleOutPlane::new(8, 8, 3, 25.0);
        assert_eq!(plane.devices().len(), 8);
        assert_eq!(plane.memory_nodes().len(), 8);
        assert_eq!(plane.ring_shapes().len(), 3);
        for s in plane.ring_shapes() {
            assert_eq!(s.participants, 8);
            assert_eq!(s.hops, 16);
        }
        // Every node terminates exactly N duplex links at the switch.
        for &d in plane.devices() {
            assert_eq!(plane.topology().duplex_degree(d), 3);
        }
        assert_eq!(plane.topology().duplex_degree(plane.switch()), 48);
    }

    #[test]
    fn balanced_pool_gives_full_device_bandwidth() {
        let plane = ScaleOutPlane::new(16, 16, 3, 25.0);
        assert_eq!(plane.virt_bandwidth_gbs(), 75.0);
        // Undersized pool throttles every device.
        let starved = ScaleOutPlane::new(16, 4, 3, 25.0);
        assert!((starved.virt_bandwidth_gbs() - 75.0 * 4.0 / 16.0).abs() < 1e-9);
        // No pool, no virtualization.
        assert_eq!(ScaleOutPlane::new(8, 0, 3, 25.0).virt_bandwidth_gbs(), 0.0);
    }

    #[test]
    fn bisection_scales_with_devices() {
        let small = ScaleOutPlane::new(8, 8, 3, 25.0);
        let large = ScaleOutPlane::new(64, 64, 3, 25.0);
        assert_eq!(small.bisection_bandwidth_gbs(), 300.0);
        assert_eq!(large.bisection_bandwidth_gbs(), 2400.0);
    }

    #[test]
    fn collective_share_is_link_bound_at_matched_striping() {
        let plane = ScaleOutPlane::new(16, 16, 3, 25.0);
        // One ring per link: the plane is non-blocking, full link rate.
        assert_eq!(plane.collective_ring_share_gbs(3), 25.0);
        // Over-striping shares the bisection: 6 rings halve the rate.
        assert_eq!(plane.collective_ring_share_gbs(6), 12.5);
        assert_eq!(plane.collective_ring_share_gbs(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_plane_panics() {
        let _ = ScaleOutPlane::new(0, 8, 3, 25.0);
    }
}
