//! # `mcdla-interconnect` — device-side interconnection networks
//!
//! The interconnect substrate of the MC-DLA simulator (Kwon & Rhu, *Beyond
//! the Memory Wall*, MICRO-51 2018):
//!
//! * [`Topology`] — node/link graphs of devices, memory-nodes, hosts and
//!   switches (§II-C, §III-B);
//! * [`Ring`] / [`RingShape`] — ring networks cast from a topology, the
//!   NCCL-style abstraction collective libraries operate on (Fig. 5);
//! * [`CollectiveModel`] — ring-algorithm latency model for all-gather,
//!   all-reduce and broadcast (Figs. 4 and 9);
//! * [`SystemInterconnect`] — the concrete layouts the paper evaluates:
//!   the DGX cube-mesh (DC-DLA), HC-DLA's split links, and the three MC-DLA
//!   interconnects of Fig. 7 with their 8/8/24, 8/12/20 and 16/16/16 hop
//!   counts.
//!
//! # Examples
//!
//! ```
//! use mcdla_interconnect::{CollectiveKind, CollectiveModel, SystemInterconnect};
//! use mcdla_sim::Bytes;
//!
//! let dc = SystemInterconnect::dgx_cube_mesh(25.0);
//! let mc = SystemInterconnect::mc_dla_ring(25.0);
//! let model = CollectiveModel::paper_fig9();
//!
//! // Adding 8 memory-nodes to each ring costs almost nothing for large
//! // synchronizations (Fig. 9: ~7%).
//! let s = Bytes::from_mib(8);
//! let t_dc = model.striped_latency(CollectiveKind::AllReduce, s, &dc.ring_shapes());
//! let t_mc = model.striped_latency(CollectiveKind::AllReduce, s, &mc.ring_shapes());
//! assert!(t_mc.as_secs_f64() / t_dc.as_secs_f64() < 1.10);
//!
//! // ...while the memory-virtualization bandwidth grows from PCIe-class to
//! // 150 GB/s per device (BW_AWARE over both neighbor memory-nodes).
//! assert_eq!(mc.virt_bandwidth_gbs(2), 150.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collective;
mod fabric;
mod graph;
mod layout;
mod ring;
mod scaleout;

pub use collective::{CollectiveKind, CollectiveModel};
pub use fabric::{FabricSpec, FabricTopology, RoutedFabric};
pub use graph::{Link, LinkId, Node, NodeId, NodeKind, Topology};
pub use layout::{RingPath, SystemInterconnect, VirtAttachment, VirtTarget};
pub use ring::{check_link_budget, Ring, RingShape};
pub use scaleout::ScaleOutPlane;
