//! Route-aware flow-level fabrics: concrete topologies whose collectives
//! are priced by max-min fair sharing over explicit link routes.
//!
//! The analytical [`CollectiveModel`](crate::CollectiveModel) prices a ring
//! collective as `steps × t_step + wire_bytes / B` — exact for dedicated
//! per-hop links, blind to contention. A [`RoutedFabric`] instead *builds*
//! the interconnect as a [`Topology`] graph, computes shortest-path route
//! tables (deterministic BFS), and drives each collective as a batch of
//! timed flows through a [`mcdla_sim::FlowNetwork`]: one flow per logical
//! ring hop, each occupying the channel list of its route, all sharing
//! links max-min fairly. On uncontended topologies the flow price collapses
//! to the analytical formula (same `B`, same wire bytes); on contended ones
//! (host-PCIe escape channels between backplane islands) the shared links
//! throttle the drain and reproduce the paper's §VI scale-out cliff.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::Serialize;

use mcdla_sim::{Bandwidth, Bytes, ChannelId, FlowNetwork, SimDuration, SimTime};

use crate::collective::{CollectiveKind, CollectiveModel};
use crate::graph::{NodeId, NodeKind, Topology};
use crate::ring::RingShape;

/// The fabric shapes the `topology` scenario knob selects.
///
/// `Ring`, `Line`, and `Mesh` wire device-nodes directly; beyond one
/// backplane island their inter-island hops ride shared host-PCIe escape
/// channels (the §VI cliff). `PooledSwitch` and `FatTree` are switched
/// fabrics whose per-plane bandwidth holds at any scale.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum FabricTopology {
    /// The design's native ring planes realized as a device cycle with
    /// dedicated per-plane links inside each backplane island.
    Ring,
    /// A device chain (no wrap link): the ring's wrap hop routes back
    /// through every reverse link of the line.
    Line,
    /// A `⌈√n⌉`-wide 2-D grid; the collective ring snakes row by row.
    Mesh,
    /// The Fig. 15 NVSwitch-class star: every device hangs its collective
    /// links off one pooled switch plane.
    PooledSwitch,
    /// Two-level tree: one edge switch per backplane pod, fat trunks
    /// (pod-width capacity) to a core switch.
    FatTree,
}

impl FabricTopology {
    /// All five topologies, in documentation order.
    pub const ALL: [FabricTopology; 5] = [
        FabricTopology::Ring,
        FabricTopology::Line,
        FabricTopology::Mesh,
        FabricTopology::PooledSwitch,
        FabricTopology::FatTree,
    ];

    /// The wire (serde) name of this topology — the PascalCase variant
    /// identifier the derived `Serialize` emits.
    pub fn wire_name(self) -> &'static str {
        match self {
            FabricTopology::Ring => "Ring",
            FabricTopology::Line => "Line",
            FabricTopology::Mesh => "Mesh",
            FabricTopology::PooledSwitch => "PooledSwitch",
            FabricTopology::FatTree => "FatTree",
        }
    }

    /// The human label used in scenario labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            FabricTopology::Ring => "ring",
            FabricTopology::Line => "line",
            FabricTopology::Mesh => "mesh",
            FabricTopology::PooledSwitch => "pooled-switch",
            FabricTopology::FatTree => "fat-tree",
        }
    }
}

impl fmt::Display for FabricTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accepts either the serde wire name (`PooledSwitch`) or the label
/// (`pooled-switch`), in any case; an unknown name answers with the full
/// accepted list. This is what CLI flags like `--topologies` parse with.
impl std::str::FromStr for FabricTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        FabricTopology::ALL
            .iter()
            .copied()
            .find(|t| s.eq_ignore_ascii_case(t.wire_name()) || s.eq_ignore_ascii_case(t.name()))
            .ok_or_else(|| {
                let accepted: Vec<String> = FabricTopology::ALL
                    .iter()
                    .map(|t| format!("{} / {}", t.wire_name(), t.name()))
                    .collect();
                format!(
                    "unknown FabricTopology `{s}` (accepted, case-insensitive: {})",
                    accepted.join(", ")
                )
            })
    }
}

// Hand-written (not derived) so wire payloads get the same lenient
// names-plus-labels parsing as the CLI.
impl serde::Deserialize for FabricTopology {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::expected("string", "FabricTopology"))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// Everything a [`RoutedFabric`] needs to know about the system it wires.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// Device-node count.
    pub devices: usize,
    /// The design's logical collective planes (participants + analytical
    /// hop counts); the fabric realizes one ring per plane.
    pub planes: Vec<RingShape>,
    /// Per-plane, per-direction collective bandwidth in GB/s — the `B` the
    /// analytical model would use.
    pub plane_gbs: f64,
    /// Devices per backplane island; direct topologies cross island
    /// boundaries over shared escape channels.
    pub backplane: usize,
    /// Escape-channel bandwidth between adjacent islands in GB/s (the
    /// host-PCIe share), shared by every plane crossing that boundary.
    pub escape_gbs: f64,
}

/// A concrete topology with shortest-path routes and flow-level collective
/// pricing.
#[derive(Debug, Clone)]
pub struct RoutedFabric {
    kind: FabricTopology,
    topology: Topology,
    /// One channel per uni-directional link, in link-id order.
    template: FlowNetwork,
    rings: Vec<RingShape>,
    /// `[ring][hop] -> channel route` for the flow batch of one collective.
    ring_hop_paths: Vec<Vec<Vec<ChannelId>>>,
}

/// Deterministic BFS shortest path (node list, inclusive); neighbors are
/// explored in link-id order so ties always break the same way.
fn shortest_node_path(t: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let n = t.nodes().len();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.index()] = true;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for l in t.links_from(u) {
            let v = l.dst();
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(u);
                if v == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

fn pipeline_steps(kind: CollectiveKind, participants: usize) -> f64 {
    match kind {
        CollectiveKind::AllGather => (participants - 1) as f64,
        CollectiveKind::AllReduce => 2.0 * (participants - 1) as f64,
        CollectiveKind::Broadcast => participants.saturating_sub(2) as f64,
    }
}

impl RoutedFabric {
    /// Builds the `kind` fabric for `spec`.
    ///
    /// Fabrics with fewer than 2 devices or no planes are empty (no rings);
    /// their collectives price to [`SimDuration::MAX`], matching
    /// [`CollectiveModel::striped_latency`] over an empty ring set.
    ///
    /// # Panics
    ///
    /// Panics if `spec.backplane` is zero or a bandwidth is not positive.
    pub fn build(kind: FabricTopology, spec: &FabricSpec) -> RoutedFabric {
        assert!(spec.backplane >= 1, "backplane island must hold a device");
        let n = spec.devices;
        if n < 2 || spec.planes.is_empty() {
            return RoutedFabric {
                kind,
                topology: Topology::new(),
                template: FlowNetwork::new(),
                rings: Vec::new(),
                ring_hop_paths: Vec::new(),
            };
        }
        let planes = spec.planes.len();
        let bp = spec.backplane;
        let islands = n.div_ceil(bp);
        let mut t = Topology::new();
        let dev: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        match kind {
            FabricTopology::Ring | FabricTopology::Line => {
                // Dedicated per-plane neighbor links inside an island.
                for _ in 0..planes {
                    for i in 0..n {
                        let j = (i + 1) % n;
                        if kind == FabricTopology::Line && j == 0 {
                            continue; // no wrap link on a line
                        }
                        if n == 2 && i == 1 {
                            continue; // the first duplex pair already covers both directions
                        }
                        if i / bp == j / bp {
                            t.add_duplex_link(dev[i], dev[j], spec.plane_gbs);
                        }
                    }
                }
                // Shared escape channels across island boundaries (one
                // switch per boundary, shared by all planes).
                if islands > 1 {
                    let boundaries = if kind == FabricTopology::Line {
                        islands - 1
                    } else {
                        islands
                    };
                    for b in 0..boundaries {
                        let i = ((b + 1) * bp).min(n) - 1;
                        let j = ((b + 1) % islands) * bp;
                        let x = t.add_node(NodeKind::Switch, format!("X{b}"));
                        t.add_duplex_link(dev[i], x, spec.escape_gbs);
                        t.add_duplex_link(x, dev[j], spec.escape_gbs);
                    }
                }
            }
            FabricTopology::Mesh => {
                let w = (n as f64).sqrt().ceil() as usize;
                for _ in 0..planes {
                    for i in 0..n {
                        if (i + 1) % w != 0 && i + 1 < n {
                            t.add_duplex_link(dev[i], dev[i + 1], spec.plane_gbs);
                        }
                        if i + w < n {
                            t.add_duplex_link(dev[i], dev[i + w], spec.plane_gbs);
                        }
                    }
                }
            }
            FabricTopology::PooledSwitch => {
                let sw = t.add_node(NodeKind::Switch, "SW");
                for _ in 0..planes {
                    for &d in &dev {
                        t.add_duplex_link(d, sw, spec.plane_gbs);
                    }
                }
            }
            FabricTopology::FatTree => {
                let core = t.add_node(NodeKind::Switch, "C");
                let pods = islands;
                let edges: Vec<NodeId> = (0..pods)
                    .map(|p| t.add_node(NodeKind::Switch, format!("E{p}")))
                    .collect();
                for _ in 0..planes {
                    for (i, &d) in dev.iter().enumerate() {
                        t.add_duplex_link(d, edges[i / bp], spec.plane_gbs);
                    }
                }
                // One fat trunk per pod, pod-width capacity, shared by all
                // planes (a full-bisection tree).
                for &e in &edges {
                    t.add_duplex_link(e, core, spec.plane_gbs * bp as f64);
                }
            }
        }
        // The collective ring order over device indices.
        let order: Vec<usize> = match kind {
            FabricTopology::Mesh => {
                let w = (n as f64).sqrt().ceil() as usize;
                let mut o = Vec::with_capacity(n);
                for r in 0..n.div_ceil(w) {
                    let row: Vec<usize> = (r * w..((r + 1) * w).min(n)).collect();
                    if r % 2 == 0 {
                        o.extend(row);
                    } else {
                        o.extend(row.into_iter().rev());
                    }
                }
                o
            }
            _ => (0..n).collect(),
        };
        // One flow-network channel per link, in link-id order.
        let mut template = FlowNetwork::new();
        let chan: Vec<ChannelId> = t
            .links()
            .iter()
            .map(|l| {
                template.add_channel(
                    format!("{}->{}", t.node(l.src()).name(), t.node(l.dst()).name()),
                    Bandwidth::gb_per_sec(l.bandwidth_gbs()),
                )
            })
            .collect();
        // Route every ring hop; plane k takes parallel link k (mod count)
        // between a node pair, so planes get dedicated lanes where the
        // graph provides them and share where it does not.
        let mut rings = Vec::with_capacity(planes);
        let mut ring_hop_paths = Vec::with_capacity(planes);
        for (k, plane) in spec.planes.iter().enumerate() {
            let mut hops = Vec::with_capacity(n);
            let mut realized = 0usize;
            for i in 0..n {
                let u = dev[order[i]];
                let v = dev[order[(i + 1) % n]];
                let nodes = shortest_node_path(&t, u, v).expect("fabric graph is connected");
                let mut route = Vec::with_capacity(nodes.len() - 1);
                for pair in nodes.windows(2) {
                    let parallel = t.links_between(pair[0], pair[1]);
                    route.push(chan[parallel[k % parallel.len()].index()]);
                }
                realized += route.len();
                hops.push(route);
            }
            let shape = match kind {
                // The ring realizes the design's analytical planes: keep
                // their hop counts (memory-node relays included) so the
                // pipeline-fill term matches the analytical model exactly,
                // plus one extra wire hop per island crossing.
                FabricTopology::Ring => RingShape {
                    participants: plane.participants.min(n).max(2),
                    hops: plane.hops + realized.saturating_sub(n),
                },
                _ => RingShape {
                    participants: n,
                    hops: realized,
                },
            };
            rings.push(shape);
            ring_hop_paths.push(hops);
        }
        RoutedFabric {
            kind,
            topology: t,
            template,
            rings,
            ring_hop_paths,
        }
    }

    /// Which topology this fabric realizes.
    pub fn kind(&self) -> FabricTopology {
        self.kind
    }

    /// The underlying node/link graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The logical collective planes (participants + hop counts).
    pub fn ring_shapes(&self) -> &[RingShape] {
        &self.rings
    }

    /// Channels in the flow template (= uni-directional links).
    pub fn channel_count(&self) -> usize {
        self.template.channel_count()
    }

    /// Flows one collective opens (one per ring hop across all planes).
    pub fn flows_per_collective(&self) -> usize {
        self.ring_hop_paths.iter().map(Vec::len).sum()
    }

    /// Prices one collective of `size` bytes, striped evenly across the
    /// fabric's planes, as a timed flow batch.
    ///
    /// Per plane the cost is the analytical pipeline-fill term
    /// (`steps × t_step`, using `model`'s message size and hop latency)
    /// plus the *simulated* drain: every ring hop opens one flow of that
    /// ring's [`wire_bytes_per_link`](CollectiveModel::wire_bytes_per_link)
    /// over its route, all planes at once, and the plane's drain is its
    /// slowest flow under max-min fair sharing. The collective completes
    /// when its slowest plane does. On dedicated routes the drain is
    /// exactly `wire_bytes / B`, i.e. the analytical bandwidth term.
    ///
    /// Empty fabrics price to [`SimDuration::MAX`] (nothing can be
    /// exchanged), zero-byte collectives to zero.
    pub fn collective_time(
        &self,
        model: &CollectiveModel,
        kind: CollectiveKind,
        size: Bytes,
    ) -> SimDuration {
        if self.rings.is_empty() {
            return SimDuration::MAX;
        }
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        let share = Bytes::new(size.as_u64().div_ceil(self.rings.len() as u64));
        let mut batch = Vec::new();
        let mut ring_of = Vec::new();
        for (r, hops) in self.ring_hop_paths.iter().enumerate() {
            let shape = self.rings[r];
            if shape.participants < 2 {
                continue;
            }
            let wire = model.wire_bytes_per_link(kind, share, shape);
            if wire.is_zero() {
                continue;
            }
            for route in hops {
                batch.push((route.clone(), wire));
                ring_of.push(r);
            }
        }
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        let mut net = self.template.clone();
        let ids = net
            .open_flows(SimTime::ZERO, batch)
            .expect("fabric routes are valid");
        let Some(done) = net.drain_all() else {
            return SimDuration::MAX; // a starved (zero-capacity) route
        };
        let finished: HashMap<_, _> = done.into_iter().map(|(t, id)| (id, t)).collect();
        let mut drain = vec![SimDuration::ZERO; self.rings.len()];
        for (i, id) in ids.iter().enumerate() {
            let t = SimDuration::from_secs_f64(finished[id].as_secs_f64());
            let r = ring_of[i];
            drain[r] = drain[r].max(t);
        }
        let b = model.link_bandwidth_gbs * 1e9;
        let mut total = SimDuration::ZERO;
        for (r, shape) in self.rings.iter().enumerate() {
            if shape.participants < 2 {
                continue;
            }
            let t_step =
                shape.hops_per_step() * (model.hop_latency_secs + model.message_bytes as f64 / b);
            let fill =
                SimDuration::from_secs_f64(pipeline_steps(kind, shape.participants) * t_step);
            total = total.max(fill + drain[r]);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(devices: usize, plane_gbs: f64, escape_gbs: f64) -> FabricSpec {
        FabricSpec {
            devices,
            planes: vec![RingShape::device_ring(devices); 3],
            plane_gbs,
            backplane: 8,
            escape_gbs,
        }
    }

    fn rel_err(a: SimDuration, b: SimDuration) -> f64 {
        (a.as_secs_f64() - b.as_secs_f64()).abs() / b.as_secs_f64().max(1e-30)
    }

    #[test]
    fn ring_matches_analytical_inside_one_backplane() {
        // Dedicated per-plane channels: the flow drain is exactly the
        // analytical bandwidth term, for every collective kind and size.
        let model = CollectiveModel::with_link_bandwidth(50.0);
        for devices in [2usize, 4, 8] {
            let fab = RoutedFabric::build(FabricTopology::Ring, &spec(devices, 50.0, 8.0));
            for kind in CollectiveKind::ALL {
                for size in [Bytes::from_kib(64), Bytes::from_mib(8), Bytes::from_mib(64)] {
                    let flow = fab.collective_time(&model, kind, size);
                    let analytic = model.striped_latency(kind, size, fab.ring_shapes());
                    assert!(
                        rel_err(flow, analytic) < 1e-4,
                        "{kind} at {devices} devices: flow {flow} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_keeps_analytic_plane_hops() {
        // MC-DLA star planes carry memory-node relays (hops > devices);
        // the realized ring must keep those hop counts for the fill term.
        let planes = vec![
            RingShape {
                participants: 8,
                hops: 8,
            },
            RingShape {
                participants: 8,
                hops: 12,
            },
            RingShape {
                participants: 8,
                hops: 20,
            },
        ];
        let fab = RoutedFabric::build(
            FabricTopology::Ring,
            &FabricSpec {
                devices: 8,
                planes: planes.clone(),
                plane_gbs: 50.0,
                backplane: 8,
                escape_gbs: 8.0,
            },
        );
        assert_eq!(fab.ring_shapes(), planes.as_slice());
        let model = CollectiveModel::with_link_bandwidth(50.0);
        let flow = fab.collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(8));
        let analytic =
            model.striped_latency(CollectiveKind::AllReduce, Bytes::from_mib(8), &planes);
        assert!(rel_err(flow, analytic) < 1e-6);
    }

    #[test]
    fn escape_channels_throttle_the_ring_at_scale() {
        // 64 devices = 8 islands; every plane's island crossings share one
        // thin escape channel per boundary, so the ring collapses while the
        // pooled switch holds the per-plane rate — the §VI cliff.
        let model = CollectiveModel::with_link_bandwidth(50.0);
        let size = Bytes::from_mib(8);
        let ring = RoutedFabric::build(FabricTopology::Ring, &spec(64, 50.0, 4.0));
        let pooled = RoutedFabric::build(FabricTopology::PooledSwitch, &spec(64, 50.0, 4.0));
        let t_ring = ring.collective_time(&model, CollectiveKind::AllReduce, size);
        let t_pooled = pooled.collective_time(&model, CollectiveKind::AllReduce, size);
        assert!(
            t_ring.as_secs_f64() > 3.0 * t_pooled.as_secs_f64(),
            "ring {t_ring} should cliff vs pooled {t_pooled}"
        );
    }

    #[test]
    fn pooled_switch_is_dedicated_at_any_scale() {
        // Star routes give every plane its own up/down lane per device, so
        // the flow price stays at the analytical 2n-hop ring price.
        let model = CollectiveModel::with_link_bandwidth(50.0);
        for devices in [8usize, 64] {
            let fab = RoutedFabric::build(FabricTopology::PooledSwitch, &spec(devices, 50.0, 4.0));
            for s in fab.ring_shapes() {
                assert_eq!(
                    (s.participants, s.hops),
                    (devices, 2 * devices),
                    "star rings traverse up+down per step"
                );
            }
            let flow = fab.collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(8));
            let analytic = model.striped_latency(
                CollectiveKind::AllReduce,
                Bytes::from_mib(8),
                fab.ring_shapes(),
            );
            assert!(rel_err(flow, analytic) < 1e-6);
        }
    }

    #[test]
    fn line_pays_for_the_wrap_hop() {
        let model = CollectiveModel::with_link_bandwidth(50.0);
        let ring = RoutedFabric::build(FabricTopology::Ring, &spec(8, 50.0, 8.0));
        let line = RoutedFabric::build(FabricTopology::Line, &spec(8, 50.0, 8.0));
        let t_ring = ring.collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(8));
        let t_line = line.collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(8));
        assert!(t_line > t_ring, "line {t_line} vs ring {t_ring}");
    }

    #[test]
    fn every_topology_builds_and_prices() {
        let model = CollectiveModel::with_link_bandwidth(50.0);
        for kind in FabricTopology::ALL {
            for devices in [2usize, 5, 8, 16, 64] {
                let fab = RoutedFabric::build(kind, &spec(devices, 50.0, 4.0));
                assert_eq!(fab.ring_shapes().len(), 3, "{kind} at {devices}");
                let t = fab.collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(1));
                assert!(
                    t > SimDuration::ZERO && t < SimDuration::MAX,
                    "{kind} at {devices}: {t}"
                );
                assert!(fab.flows_per_collective() >= 3 * devices);
            }
        }
    }

    #[test]
    fn fat_tree_tracks_pooled_switch() {
        // Fat trunks keep cross-pod hops unthrottled; the tree prices within
        // a small factor of the star (extra hops, no contention).
        let model = CollectiveModel::with_link_bandwidth(50.0);
        let pooled = RoutedFabric::build(FabricTopology::PooledSwitch, &spec(64, 50.0, 4.0));
        let tree = RoutedFabric::build(FabricTopology::FatTree, &spec(64, 50.0, 4.0));
        let tp = pooled
            .collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(8))
            .as_secs_f64();
        let tt = tree
            .collective_time(&model, CollectiveKind::AllReduce, Bytes::from_mib(8))
            .as_secs_f64();
        assert!(tt < 2.0 * tp, "tree {tt} vs pooled {tp}");
    }

    #[test]
    fn degenerate_fabrics_are_empty() {
        let fab = RoutedFabric::build(FabricTopology::Ring, &spec(1, 50.0, 8.0));
        assert!(fab.ring_shapes().is_empty());
        assert_eq!(
            fab.collective_time(
                &CollectiveModel::paper_fig9(),
                CollectiveKind::AllReduce,
                Bytes::from_mib(1)
            ),
            SimDuration::MAX
        );
        let fab = RoutedFabric::build(FabricTopology::Mesh, &spec(4, 50.0, 8.0));
        assert_eq!(
            fab.collective_time(
                &CollectiveModel::paper_fig9(),
                CollectiveKind::AllReduce,
                Bytes::ZERO
            ),
            SimDuration::ZERO
        );
    }

    #[test]
    fn topology_serde_accepts_wire_names_and_labels() {
        for t in FabricTopology::ALL {
            let v = serde::Value::Str(t.wire_name().to_owned());
            assert_eq!(serde::Deserialize::from_value(&v), Ok(t));
            let v = serde::Value::Str(t.name().to_uppercase());
            assert_eq!(serde::Deserialize::from_value(&v), Ok(t));
        }
        let bad = serde::Value::Str("torus".into());
        let err = <FabricTopology as serde::Deserialize>::from_value(&bad).unwrap_err();
        let msg = err.to_string();
        for t in FabricTopology::ALL {
            assert!(msg.contains(t.wire_name()), "{msg}");
            assert!(msg.contains(t.name()), "{msg}");
        }
    }

    #[test]
    fn routes_are_shortest_and_deterministic() {
        let fab = RoutedFabric::build(FabricTopology::PooledSwitch, &spec(4, 50.0, 4.0));
        let t = fab.topology();
        let devs: Vec<NodeId> = t.nodes_of_kind(NodeKind::Device).map(|n| n.id()).collect();
        let p = shortest_node_path(t, devs[0], devs[3]).unwrap();
        assert_eq!(p.len(), 3, "device-switch-device");
        assert_eq!(p, shortest_node_path(t, devs[0], devs[3]).unwrap());
    }
}
