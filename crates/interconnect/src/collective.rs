//! Ring-algorithm collective communication latency model (Figs. 4 and 9).
//!
//! Following Chan et al. and the NCCL design the paper cites (§II-C), a
//! collective over a ring of `p` participants moves data in `p−1` (all-
//! gather, broadcast) or `2(p−1)` (all-reduce) pipelined steps of `S/p`
//! bytes each, chunked into fixed-size messages:
//!
//! ```text
//! T_allgather  =  (p−1) · t_step  +  S·(p−1)/(p·B)
//! T_allreduce  = 2(p−1) · t_step  + 2S·(p−1)/(p·B)
//! T_broadcast  =  (p−2) · t_step  +  S/B
//! t_step       = hops_per_step · (α + m/B)
//! ```
//!
//! where `B` is the per-link bandwidth, `m` the message (chunk) size, and
//! `α` the per-hop wire latency. The step term is the pipeline-fill cost —
//! the only part that grows when MC-DLA doubles the node count of each ring
//! — and the bandwidth term carries the asymptotic `(p−1)/p` factor.
//! At the paper's Figure 9 operating point (8 MB synchronization size, 4 KB
//! messages, 50 GB/s bi-directional links) this model reproduces the
//! quoted ≈7% all-reduce latency increase from an 8-node to a 16-node ring.

use std::fmt;

use serde::{Deserialize, Serialize};

use mcdla_sim::{Bandwidth, Bytes, SimDuration};

use crate::ring::RingShape;

/// The collective primitives of Figure 4.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every device ends with the concatenation of all devices' data
    /// (feature maps X in model-parallel training).
    AllGather,
    /// Every device ends with the element-wise reduction of all devices'
    /// data (gradients dX and dW).
    AllReduce,
    /// One device's data is replicated to all (updated weights dW).
    Broadcast,
}

impl CollectiveKind {
    /// All three primitives.
    pub const ALL: [CollectiveKind; 3] = [
        CollectiveKind::AllGather,
        CollectiveKind::AllReduce,
        CollectiveKind::Broadcast,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::AllReduce => "all-reduce",
            CollectiveKind::Broadcast => "broadcast",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ring-collective latency model.
///
/// # Examples
///
/// Reproducing the Figure 9 observation (≈7% all-reduce latency increase
/// when the ring doubles from 8 to 16 nodes at an 8 MB sync size):
///
/// ```
/// use mcdla_interconnect::{CollectiveKind, CollectiveModel, RingShape};
/// use mcdla_sim::Bytes;
///
/// let model = CollectiveModel::paper_fig9();
/// let s = Bytes::from_mib(8);
/// let t8 = model.latency(CollectiveKind::AllReduce, s, RingShape::device_ring(8));
/// let t16 = model.latency(CollectiveKind::AllReduce, s, RingShape::device_ring(16));
/// let overhead = t16.as_secs_f64() / t8.as_secs_f64() - 1.0;
/// assert!(overhead > 0.03 && overhead < 0.12, "overhead {overhead}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveModel {
    /// Message (chunk) size for pipelining; Figure 9 uses 4 KB.
    pub message_bytes: u64,
    /// Per-link bandwidth in GB/s (uni-directional).
    pub link_bandwidth_gbs: f64,
    /// Per-hop wire/protocol latency in seconds.
    pub hop_latency_secs: f64,
}

impl CollectiveModel {
    /// Model with the paper's Figure 9 parameters: 4 KB messages, 50 GB/s
    /// **bi-directional** links (25 GB/s per direction), 100 ns hop latency.
    pub fn paper_fig9() -> Self {
        CollectiveModel {
            message_bytes: 4 * 1024,
            link_bandwidth_gbs: 25.0,
            hop_latency_secs: 100e-9,
        }
    }

    /// Model for a given per-direction link bandwidth, keeping the paper's
    /// 4 KB message size and 100 ns hop latency.
    pub fn with_link_bandwidth(link_bandwidth_gbs: f64) -> Self {
        CollectiveModel {
            link_bandwidth_gbs,
            ..CollectiveModel::paper_fig9()
        }
    }

    fn step_time(&self, shape: RingShape) -> f64 {
        let b = self.link_bandwidth_gbs * 1e9;
        shape.hops_per_step() * (self.hop_latency_secs + self.message_bytes as f64 / b)
    }

    /// Latency of one collective of `size` bytes over a single ring.
    ///
    /// Rings with fewer than 2 participants complete instantly (nothing to
    /// exchange).
    pub fn latency(&self, kind: CollectiveKind, size: Bytes, shape: RingShape) -> SimDuration {
        let p = shape.participants;
        if p < 2 || size.is_zero() {
            return SimDuration::ZERO;
        }
        let s = size.as_f64();
        let b = self.link_bandwidth_gbs * 1e9;
        let pf = p as f64;
        let t_step = self.step_time(shape);
        let secs = match kind {
            CollectiveKind::AllGather => (pf - 1.0) * t_step + s * (pf - 1.0) / (pf * b),
            CollectiveKind::AllReduce => {
                2.0 * (pf - 1.0) * t_step + 2.0 * s * (pf - 1.0) / (pf * b)
            }
            CollectiveKind::Broadcast => (pf - 2.0).max(0.0) * t_step + s / b,
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Latency when `size` is striped evenly across several rings (NCCL's
    /// multi-ring operation). Completion is bounded by the slowest ring —
    /// this is what penalizes the unbalanced 8/12/20-hop rings of
    /// Fig. 7(a)(b).
    pub fn striped_latency(
        &self,
        kind: CollectiveKind,
        size: Bytes,
        rings: &[RingShape],
    ) -> SimDuration {
        if rings.is_empty() {
            return SimDuration::MAX;
        }
        let share = Bytes::new(size.as_u64().div_ceil(rings.len() as u64));
        rings
            .iter()
            .map(|r| self.latency(kind, share, *r))
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Bytes each **link** of a ring carries during one collective of
    /// `size_on_ring` bytes — the quantity to inject into a
    /// [`mcdla_sim::FlowNetwork`] when modeling contention between
    /// collective and memory-virtualization traffic.
    pub fn wire_bytes_per_link(
        &self,
        kind: CollectiveKind,
        size_on_ring: Bytes,
        shape: RingShape,
    ) -> Bytes {
        let p = shape.participants as f64;
        if shape.participants < 2 {
            return Bytes::ZERO;
        }
        let s = size_on_ring.as_f64();
        let bytes = match kind {
            CollectiveKind::AllGather => s * (p - 1.0) / p,
            CollectiveKind::AllReduce => 2.0 * s * (p - 1.0) / p,
            CollectiveKind::Broadcast => s,
        };
        Bytes::new(bytes.round() as u64)
    }

    /// Effective per-device injection bandwidth for collectives striped over
    /// `rings` (the paper's `(#rings) x B`; 75 GB/s for DC-DLA's three
    /// rings at 25 GB/s).
    pub fn aggregate_ring_bandwidth(&self, rings: &[RingShape]) -> Bandwidth {
        Bandwidth::gb_per_sec(self.link_bandwidth_gbs * rings.len() as f64)
    }
}

impl Default for CollectiveModel {
    fn default() -> Self {
        CollectiveModel::paper_fig9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CollectiveModel {
        CollectiveModel::paper_fig9()
    }

    #[test]
    fn fig9_allreduce_16_vs_8_is_about_7_percent() {
        let s = Bytes::from_mib(8);
        let t8 = m().latency(CollectiveKind::AllReduce, s, RingShape::device_ring(8));
        let t16 = m().latency(CollectiveKind::AllReduce, s, RingShape::device_ring(16));
        let overhead = t16.as_secs_f64() / t8.as_secs_f64() - 1.0;
        assert!(
            (0.05..=0.10).contains(&overhead),
            "expected ~7% (paper), got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn latency_grows_with_ring_size() {
        let s = Bytes::from_mib(8);
        for kind in CollectiveKind::ALL {
            let mut prev = SimDuration::ZERO;
            for p in 2..=36 {
                let t = m().latency(kind, s, RingShape::device_ring(p));
                assert!(t >= prev, "{kind} shrank at p={p}");
                prev = t;
            }
        }
    }

    #[test]
    fn fig9_normalized_curves_shapes() {
        // Normalized to a 2-node ring, the 36-node values stay within the
        // plot's ~2.5 ceiling, with broadcast flattest (pipeline-fill only).
        let s = Bytes::from_mib(8);
        let norm = |kind| {
            let t2 = m()
                .latency(kind, s, RingShape::device_ring(2))
                .as_secs_f64();
            let t36 = m()
                .latency(kind, s, RingShape::device_ring(36))
                .as_secs_f64();
            t36 / t2
        };
        let bc = norm(CollectiveKind::Broadcast);
        let ag = norm(CollectiveKind::AllGather);
        let ar = norm(CollectiveKind::AllReduce);
        assert!(
            bc < ag && bc < ar,
            "broadcast should be flattest: {bc} {ag} {ar}"
        );
        assert!(
            ar < 2.5 && ag < 2.5,
            "curves exceed Fig. 9's ceiling: {ag} {ar}"
        );
        assert!(ar > 1.8, "all-reduce should approach 2x at 36 nodes: {ar}");
    }

    #[test]
    fn small_messages_are_latency_bound() {
        // Fig. 9's left region: for small sizes MC-DLA's 16-node ring costs
        // noticeably more than the 8-node ring.
        let s = Bytes::from_kib(16);
        let t8 = m().latency(CollectiveKind::AllReduce, s, RingShape::device_ring(8));
        let t16 = m().latency(
            CollectiveKind::AllReduce,
            s,
            RingShape {
                participants: 8,
                hops: 16,
            },
        );
        let ratio = t16.as_secs_f64() / t8.as_secs_f64();
        assert!(
            ratio > 1.5,
            "small-message overhead should be large: {ratio}"
        );
    }

    #[test]
    fn memory_nodes_add_hops_not_steps() {
        // An MC-DLA ring (8 participants, 16 hops) at 8 MB costs only a few
        // percent more than the DC-DLA ring (8, 8): bandwidth term identical,
        // pipeline fill doubled.
        let s = Bytes::from_mib(8);
        let dc = m().latency(CollectiveKind::AllReduce, s, RingShape::device_ring(8));
        let mc = m().latency(
            CollectiveKind::AllReduce,
            s,
            RingShape {
                participants: 8,
                hops: 16,
            },
        );
        let overhead = mc.as_secs_f64() / dc.as_secs_f64() - 1.0;
        assert!(overhead > 0.0 && overhead < 0.05, "overhead {overhead}");
    }

    #[test]
    fn striping_over_more_rings_is_faster() {
        let s = Bytes::from_mib(64);
        let one = m().striped_latency(CollectiveKind::AllReduce, s, &[RingShape::device_ring(8)]);
        let three = m().striped_latency(
            CollectiveKind::AllReduce,
            s,
            &[RingShape::device_ring(8); 3],
        );
        assert!(three.as_secs_f64() < 0.4 * one.as_secs_f64());
    }

    #[test]
    fn unbalanced_rings_bottleneck_on_longest() {
        // Fig. 7(b)'s 8/12/20-hop rings vs Fig. 7(c)'s balanced 16/16/16.
        let s = Bytes::from_mib(8);
        let star = [
            RingShape {
                participants: 8,
                hops: 8,
            },
            RingShape {
                participants: 8,
                hops: 12,
            },
            RingShape {
                participants: 8,
                hops: 20,
            },
        ];
        let ring = [RingShape {
            participants: 8,
            hops: 16,
        }; 3];
        let t_star = m().striped_latency(CollectiveKind::AllReduce, s, &star);
        let t_ring = m().striped_latency(CollectiveKind::AllReduce, s, &ring);
        assert!(t_star >= t_ring, "{t_star} < {t_ring}");
    }

    #[test]
    fn wire_bytes_match_ring_algorithm() {
        let s = Bytes::from_mib(8);
        let shape = RingShape::device_ring(8);
        let ag = m().wire_bytes_per_link(CollectiveKind::AllGather, s, shape);
        let ar = m().wire_bytes_per_link(CollectiveKind::AllReduce, s, shape);
        let bc = m().wire_bytes_per_link(CollectiveKind::Broadcast, s, shape);
        assert_eq!(ar.as_u64(), 2 * ag.as_u64());
        assert_eq!(bc, s);
        assert!((ag.as_f64() - s.as_f64() * 7.0 / 8.0).abs() < 1.0);
    }

    #[test]
    fn degenerate_cases() {
        let s = Bytes::from_mib(1);
        assert_eq!(
            m().latency(CollectiveKind::AllReduce, s, RingShape::device_ring(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            m().latency(
                CollectiveKind::AllReduce,
                Bytes::ZERO,
                RingShape::device_ring(8)
            ),
            SimDuration::ZERO
        );
        assert_eq!(
            m().striped_latency(CollectiveKind::AllReduce, s, &[]),
            SimDuration::MAX
        );
    }

    #[test]
    fn aggregate_bandwidth_is_rings_times_b() {
        let rings = [RingShape::device_ring(8); 3];
        let bw = m().aggregate_ring_bandwidth(&rings);
        assert!((bw.as_gb_per_sec() - 75.0).abs() < 1e-9);
    }
}
