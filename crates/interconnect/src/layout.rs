//! Concrete system interconnect layouts (Figs. 5, 7, 8).
//!
//! Five constructors build the device-side interconnects the paper
//! evaluates:
//!
//! | constructor | paper figure | comm rings (hops) | virt channel per device |
//! |---|---|---|---|
//! | [`SystemInterconnect::dgx_cube_mesh`] | Fig. 5 (DC-DLA, DC-DLA(O)) | 8 / 8 / 8 | — (PCIe, modeled host-side) |
//! | [`SystemInterconnect::hc_dla`] | §II-C HC-DLA | 8 | 3 links to host CPU (75 GB/s) |
//! | [`SystemInterconnect::mc_dla_star_a`] | Fig. 7(a) | 8 / 8 / 24 | 2 links to its memory-node (50 GB/s) |
//! | [`SystemInterconnect::mc_dla_star_b`] | Fig. 7(b) (MC-DLA(S)) | 8 / 12 / 20 | 2 links to its memory-node (50 GB/s) |
//! | [`SystemInterconnect::mc_dla_ring`] | Fig. 7(c) (MC-DLA(L)/(B)) | 16 / 16 / 16 | 3 links each to left and right memory-nodes (75/150 GB/s) |
//!
//! The ring orders for the 8-device cube-mesh follow NCCL's casting of the
//! DGX-1V topology. The star variants reproduce Fig. 7(a)/(b) at hop-count
//! fidelity (the exact physical wire routing of the folded designs is not
//! specified by the paper beyond the hop counts).

use serde::{Deserialize, Serialize};

use crate::graph::{LinkId, NodeId, NodeKind, Topology};
use crate::ring::{Ring, RingShape};

/// A ring together with the physical links realizing each hop (one duplex
/// pair per hop; only the forward-direction ids are stored).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingPath {
    /// The cyclic node traversal.
    pub ring: Ring,
    /// `links[i]` carries hop `i` of the lap (empty when the layout is
    /// modeled at hop-count fidelity only).
    pub links: Vec<LinkId>,
}

/// One device's attachment to a backing-store target for memory
/// virtualization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtTarget {
    /// The memory-node or host CPU reached.
    pub node: NodeId,
    /// Device-to-target link lanes (offload direction).
    pub out_links: Vec<LinkId>,
    /// Target-to-device link lanes (prefetch direction).
    pub in_links: Vec<LinkId>,
}

/// All backing-store targets of one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtAttachment {
    /// The device.
    pub device: NodeId,
    /// Reachable targets; MC-DLA(B) uses both, MC-DLA(L) only the first.
    pub targets: Vec<VirtTarget>,
}

impl VirtAttachment {
    /// Total offload-direction lanes across targets.
    pub fn total_out_lanes(&self) -> usize {
        self.targets.iter().map(|t| t.out_links.len()).sum()
    }
}

/// A fully-assembled device-side interconnect for one system design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemInterconnect {
    name: String,
    topology: Topology,
    devices: Vec<NodeId>,
    memory_nodes: Vec<NodeId>,
    hosts: Vec<NodeId>,
    rings: Vec<RingPath>,
    virt: Vec<VirtAttachment>,
    link_bandwidth_gbs: f64,
}

impl SystemInterconnect {
    /// Layout name (e.g. `"mc-dla-ring"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Device-nodes in index order.
    pub fn devices(&self) -> &[NodeId] {
        &self.devices
    }

    /// Memory-nodes in index order (empty for DC/HC designs).
    pub fn memory_nodes(&self) -> &[NodeId] {
        &self.memory_nodes
    }

    /// Host CPU sockets (HC-DLA only).
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The collective-communication rings.
    pub fn rings(&self) -> &[RingPath] {
        &self.rings
    }

    /// Shapes of all rings, for the collective latency model.
    pub fn ring_shapes(&self) -> Vec<RingShape> {
        self.rings
            .iter()
            .map(|r| r.ring.shape(&self.topology))
            .collect()
    }

    /// Per-device virtualization attachments (index-aligned with
    /// [`SystemInterconnect::devices`]); empty for DC designs.
    pub fn virt_attachments(&self) -> &[VirtAttachment] {
        &self.virt
    }

    /// Per-link uni-directional bandwidth in GB/s (Table II's B).
    pub fn link_bandwidth_gbs(&self) -> f64 {
        self.link_bandwidth_gbs
    }

    /// Per-device virtualization bandwidth in GB/s when using the first
    /// `targets` attachments (1 = LOCAL-style single-target, 2 = BW_AWARE
    /// both neighbors). Returns 0.0 for designs without attachments.
    pub fn virt_bandwidth_gbs(&self, targets: usize) -> f64 {
        match self.virt.first() {
            None => 0.0,
            Some(a) => {
                let lanes: usize = a
                    .targets
                    .iter()
                    .take(targets)
                    .map(|t| t.out_links.len())
                    .sum();
                lanes as f64 * self.link_bandwidth_gbs
            }
        }
    }

    /// DC-DLA / DC-DLA(O): the DGX cube-mesh of Fig. 5 cast as three
    /// 8-device rings. No device-side virtualization attachments — DC-DLA
    /// virtualizes over host PCIe.
    pub fn dgx_cube_mesh(link_bandwidth_gbs: f64) -> Self {
        let mut topo = Topology::new();
        let devices: Vec<NodeId> = (0..8)
            .map(|i| topo.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        // NCCL-style ring casts of the DGX-1V cube-mesh.
        let orders: [[usize; 8]; 3] = [
            [0, 1, 2, 3, 7, 6, 5, 4],
            [0, 2, 6, 4, 5, 7, 3, 1],
            [0, 3, 2, 1, 5, 6, 7, 4],
        ];
        let mut rings = Vec::new();
        for order in orders {
            let seq: Vec<NodeId> = order.iter().map(|&i| devices[i]).collect();
            rings.push(build_ring_links(&mut topo, seq, link_bandwidth_gbs));
        }
        SystemInterconnect {
            name: "dc-dla".into(),
            topology: topo,
            devices,
            memory_nodes: Vec::new(),
            hosts: Vec::new(),
            rings,
            virt: Vec::new(),
            link_bandwidth_gbs,
        }
    }

    /// HC-DLA: half of each device's links (3) connect to its CPU socket
    /// for memory virtualization; the remainder forms a single 8-device
    /// ring (2 links), leaving one link unused (§II-C's "now singular or
    /// duo ring networks").
    pub fn hc_dla(link_bandwidth_gbs: f64) -> Self {
        let mut topo = Topology::new();
        let devices: Vec<NodeId> = (0..8)
            .map(|i| topo.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        let hosts: Vec<NodeId> = (0..2)
            .map(|i| topo.add_node(NodeKind::HostCpu, format!("CPU{i}")))
            .collect();
        let ring = build_ring_links(&mut topo, devices.clone(), link_bandwidth_gbs);
        let mut virt = Vec::new();
        for (i, &d) in devices.iter().enumerate() {
            let host = hosts[i / 4]; // four devices per socket
            let mut out_links = Vec::new();
            let mut in_links = Vec::new();
            for _ in 0..3 {
                let (o, inn) = topo.add_duplex_link(d, host, link_bandwidth_gbs);
                out_links.push(o);
                in_links.push(inn);
            }
            virt.push(VirtAttachment {
                device: d,
                targets: vec![VirtTarget {
                    node: host,
                    out_links,
                    in_links,
                }],
            });
        }
        SystemInterconnect {
            name: "hc-dla".into(),
            topology: topo,
            devices,
            memory_nodes: Vec::new(),
            hosts,
            rings: vec![ring],
            virt,
            link_bandwidth_gbs,
        }
    }

    /// Fig. 7(a): the black cube-mesh ring rearranged through all 8
    /// memory-nodes (each visited twice, 24 hops) plus two 8-device rings;
    /// each device reaches its designated memory-node over 2 links.
    pub fn mc_dla_star_a(link_bandwidth_gbs: f64) -> Self {
        Self::mc_dla_star("mc-dla-star-a", link_bandwidth_gbs, StarRingPlan::FigureA)
    }

    /// Fig. 7(b), the evaluated MC-DLA(S): memory-nodes folded inward,
    /// rings of 8/12/20 hops; each device reaches its designated
    /// memory-node over 2 links (50 GB/s).
    pub fn mc_dla_star_b(link_bandwidth_gbs: f64) -> Self {
        Self::mc_dla_star("mc-dla-star", link_bandwidth_gbs, StarRingPlan::FigureB)
    }

    fn mc_dla_star(name: &str, link_bandwidth_gbs: f64, plan: StarRingPlan) -> Self {
        let mut topo = Topology::new();
        let devices: Vec<NodeId> = (0..8)
            .map(|i| topo.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        let memory_nodes: Vec<NodeId> = (0..8)
            .map(|i| topo.add_node(NodeKind::Memory, format!("M{i}")))
            .collect();
        let d = &devices;
        let m = &memory_nodes;
        let ring_seqs: Vec<Vec<NodeId>> = match plan {
            StarRingPlan::FigureA => vec![
                d.to_vec(),
                d.to_vec(),
                // ... M0 -> D0 -> M0 -> M7 -> D7 -> M7 ... (footnote 1):
                // 8 devices + 16 memory visits = 24 hops.
                (0..8).flat_map(|i| [m[i], d[i], m[i]]).collect(),
            ],
            StarRingPlan::FigureB => vec![
                d.to_vec(),
                // 12 hops: four memory-nodes folded into the lap.
                vec![
                    d[0], m[0], d[1], d[2], m[2], d[3], d[4], m[4], d[5], d[6], m[6], d[7],
                ],
                // 20 hops: all eight memory-nodes, four visited twice.
                vec![
                    d[0], m[0], d[1], m[1], d[2], m[2], d[3], m[3], d[4], m[4], d[5], m[5], d[6],
                    m[6], d[7], m[7], m[1], m[3], m[5], m[7],
                ],
            ],
        };
        let rings: Vec<RingPath> = ring_seqs
            .into_iter()
            .map(|seq| RingPath {
                ring: Ring::new(seq),
                links: Vec::new(), // hop-count fidelity; see module docs
            })
            .collect();
        let mut virt = Vec::new();
        for i in 0..8 {
            let mut out_links = Vec::new();
            let mut in_links = Vec::new();
            for _ in 0..2 {
                let (o, inn) =
                    topo.add_duplex_link(devices[i], memory_nodes[i], link_bandwidth_gbs);
                out_links.push(o);
                in_links.push(inn);
            }
            virt.push(VirtAttachment {
                device: devices[i],
                targets: vec![VirtTarget {
                    node: memory_nodes[i],
                    out_links,
                    in_links,
                }],
            });
        }
        SystemInterconnect {
            name: name.into(),
            topology: topo,
            devices,
            memory_nodes,
            hosts: Vec::new(),
            rings,
            virt,
            link_bandwidth_gbs,
        }
    }

    /// Fig. 7(c), the proposed ring-based MC-DLA: three identical 16-node
    /// rings alternating device- and memory-nodes. Each adjacent pair is
    /// joined by three parallel duplex links (one per ring), so a device
    /// reaches its **left** and **right** memory-nodes over 3 links each —
    /// 75 GB/s per side, 150 GB/s with BW_AWARE placement (Fig. 10).
    pub fn mc_dla_ring(link_bandwidth_gbs: f64) -> Self {
        let mut topo = Topology::new();
        let devices: Vec<NodeId> = (0..8)
            .map(|i| topo.add_node(NodeKind::Device, format!("D{i}")))
            .collect();
        let memory_nodes: Vec<NodeId> = (0..8)
            .map(|i| topo.add_node(NodeKind::Memory, format!("M{i}")))
            .collect();
        // D0, M0, D1, M1, ..., D7, M7 and back to D0.
        let seq: Vec<NodeId> = (0..8).flat_map(|i| [devices[i], memory_nodes[i]]).collect();
        let rings: Vec<RingPath> = (0..3)
            .map(|_| build_ring_links(&mut topo, seq.clone(), link_bandwidth_gbs))
            .collect();
        // Virtualization reuses the ring links: device i's right neighbor is
        // M_i (hop 2i of each lap) and left neighbor is M_{i-1 mod 8}
        // (hop 2i-1 ends at D_i; the reverse lane of hop 2i-1... handled by
        // looking up links_between).
        let mut virt = Vec::new();
        for i in 0..8 {
            let right = memory_nodes[i];
            let left = memory_nodes[(i + 7) % 8];
            let mk_target = |topo: &Topology, node: NodeId| VirtTarget {
                node,
                out_links: topo.links_between(devices[i], node),
                in_links: topo.links_between(node, devices[i]),
            };
            virt.push(VirtAttachment {
                device: devices[i],
                targets: vec![mk_target(&topo, right), mk_target(&topo, left)],
            });
        }
        SystemInterconnect {
            name: "mc-dla-ring".into(),
            topology: topo,
            devices,
            memory_nodes,
            hosts: Vec::new(),
            rings,
            virt,
            link_bandwidth_gbs,
        }
    }
}

#[derive(Debug, Copy, Clone)]
enum StarRingPlan {
    FigureA,
    FigureB,
}

/// Adds one duplex link per hop of `seq` and returns the ring with its
/// forward-direction link ids.
fn build_ring_links(topo: &mut Topology, seq: Vec<NodeId>, bw: f64) -> RingPath {
    let n = seq.len();
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let (fwd, _rev) = topo.add_duplex_link(seq[i], seq[(i + 1) % n], bw);
        links.push(fwd);
    }
    RingPath {
        ring: Ring::new(seq),
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::check_link_budget;

    const B: f64 = 25.0;

    #[test]
    fn dgx_has_three_balanced_8_hop_rings() {
        let sys = SystemInterconnect::dgx_cube_mesh(B);
        let shapes = sys.ring_shapes();
        assert_eq!(shapes.len(), 3);
        for s in &shapes {
            assert_eq!(s.participants, 8);
            assert_eq!(s.hops, 8);
        }
        // 3 rings x 2 links = exactly the N = 6 budget.
        let rings: Vec<Ring> = sys.rings().iter().map(|r| r.ring.clone()).collect();
        let used = check_link_budget(sys.topology(), &rings, 6).expect("budget");
        assert!(used.iter().all(|&u| u == 6));
        assert!(sys.virt_attachments().is_empty());
        assert_eq!(sys.virt_bandwidth_gbs(2), 0.0);
    }

    #[test]
    fn hc_dla_splits_links_between_host_and_ring() {
        let sys = SystemInterconnect::hc_dla(B);
        assert_eq!(sys.ring_shapes(), vec![RingShape::device_ring(8)]);
        assert_eq!(sys.hosts().len(), 2);
        assert_eq!(sys.virt_attachments().len(), 8);
        // 3 links to the host: 75 GB/s of virtualization bandwidth.
        assert_eq!(sys.virt_bandwidth_gbs(1), 75.0);
        // Devices 0-3 on socket 0, 4-7 on socket 1.
        let a0 = &sys.virt_attachments()[0];
        let a7 = &sys.virt_attachments()[7];
        assert_ne!(a0.targets[0].node, a7.targets[0].node);
        // Device link budget: 2 (ring) + 3 (host) = 5 of 6.
        for &d in sys.devices() {
            assert!(sys.topology().duplex_degree(d) <= 6);
        }
    }

    #[test]
    fn star_a_matches_fig7a_hop_counts() {
        let sys = SystemInterconnect::mc_dla_star_a(B);
        let mut hops: Vec<usize> = sys.ring_shapes().iter().map(|s| s.hops).collect();
        hops.sort_unstable();
        assert_eq!(hops, vec![8, 8, 24]);
        for s in sys.ring_shapes() {
            assert_eq!(s.participants, 8);
        }
        assert_eq!(sys.virt_bandwidth_gbs(1), 50.0);
    }

    #[test]
    fn star_b_matches_fig7b_hop_counts() {
        let sys = SystemInterconnect::mc_dla_star_b(B);
        let mut hops: Vec<usize> = sys.ring_shapes().iter().map(|s| s.hops).collect();
        hops.sort_unstable();
        assert_eq!(hops, vec![8, 12, 20]);
        for s in sys.ring_shapes() {
            assert_eq!(s.participants, 8);
        }
        // 2 dedicated links: 50 GB/s (the paper's Dn<->Mn bandwidth).
        assert_eq!(sys.virt_bandwidth_gbs(1), 50.0);
        assert_eq!(sys.virt_bandwidth_gbs(2), 50.0); // single target only
    }

    #[test]
    fn ring_c_is_balanced_and_bandwidth_aware() {
        let sys = SystemInterconnect::mc_dla_ring(B);
        let shapes = sys.ring_shapes();
        assert_eq!(shapes.len(), 3);
        for s in &shapes {
            assert_eq!(s.participants, 8);
            assert_eq!(s.hops, 16);
            assert_eq!(s.hops_per_step(), 2.0);
        }
        // LOCAL: one side, 3 links = 75 GB/s; BW_AWARE: both sides = 150.
        assert_eq!(sys.virt_bandwidth_gbs(1), 75.0);
        assert_eq!(sys.virt_bandwidth_gbs(2), 150.0);
        // Budget: every node appears in 3 rings = 6 links, and the virt
        // links are the ring links (no extra links).
        let rings: Vec<Ring> = sys.rings().iter().map(|r| r.ring.clone()).collect();
        let used = check_link_budget(sys.topology(), &rings, 6).expect("budget");
        assert!(used.iter().all(|&u| u == 6));
        for n in sys.topology().nodes() {
            assert_eq!(sys.topology().duplex_degree(n.id()), 6);
        }
    }

    #[test]
    fn ring_c_virt_targets_are_left_and_right_neighbors() {
        let sys = SystemInterconnect::mc_dla_ring(B);
        let d1 = &sys.virt_attachments()[1];
        let right = sys.memory_nodes()[1];
        let left = sys.memory_nodes()[0];
        assert_eq!(d1.targets[0].node, right);
        assert_eq!(d1.targets[1].node, left);
        assert_eq!(d1.targets[0].out_links.len(), 3);
        assert_eq!(d1.targets[1].out_links.len(), 3);
        assert_eq!(d1.total_out_lanes(), 6);
    }

    #[test]
    fn every_memory_node_serves_exactly_two_devices_in_ring_c() {
        let sys = SystemInterconnect::mc_dla_ring(B);
        let mut clients = vec![0usize; sys.memory_nodes().len()];
        for a in sys.virt_attachments() {
            for t in &a.targets {
                let idx = sys
                    .memory_nodes()
                    .iter()
                    .position(|&m| m == t.node)
                    .expect("target is a memory node");
                clients[idx] += 1;
            }
        }
        assert!(clients.iter().all(|&c| c == 2), "{clients:?}");
    }
}
